"""Drop policies: MAFIC's adaptive policy and the baselines.

A :class:`DropPolicy` decides, per packet addressed to the victim, one of
three outcomes: PASS, DROP, or DROP_AND_PROBE.  The MAFIC agent owns the
flow tables and timers and delegates the *decision for packets of
still-undecided flows* to its policy; baselines are whole policies on
their own (they never probe).

Baselines reproduce the comparison points the paper motivates:

* :class:`ProportionalDropPolicy` — the simple proportionate dropper of
  the authors' earlier work [2]: every packet to the victim, legitimate
  or malicious, is dropped with the same probability.  MAFIC's raison
  d'etre is beating the collateral damage of this policy.
* :class:`AggregateRateLimitPolicy` — classic pushback-style aggregate
  rate limiting (Ioannidis & Bellovin): admit the victim-bound aggregate
  up to a token-bucket rate; drop the excess indiscriminately.
* :class:`PassthroughPolicy` — the no-defence control.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.util.validation import check_positive, check_probability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.packet import Packet


class DropDecision(Enum):
    """Outcome of a per-packet policy decision."""

    PASS = "pass"
    DROP = "drop"
    DROP_AND_PROBE = "drop_and_probe"


class DropPolicy:
    """Interface: decide the fate of one victim-bound packet."""

    def decide(self, packet: "Packet", now: float) -> DropDecision:
        """Return the decision for this packet."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state between pushback episodes (default no-op)."""


class PassthroughPolicy(DropPolicy):
    """Never drops: the undefended control."""

    def decide(self, packet: "Packet", now: float) -> DropDecision:
        """Always PASS."""
        return DropDecision.PASS


class AdaptiveMaficPolicy(DropPolicy):
    """MAFIC's probing decision: drop with probability ``Pd`` and probe.

    Only consulted for packets of flows not yet in any table; the agent
    handles table hits itself.
    """

    def __init__(self, drop_probability: float, rng) -> None:
        self.drop_probability = check_probability(
            "drop_probability", drop_probability
        )
        self._rng = rng
        self.decisions = 0
        self.drops = 0

    def decide(self, packet: "Packet", now: float) -> DropDecision:
        """Bernoulli(Pd) drop-and-probe; otherwise pass (still monitored)."""
        self.decisions += 1
        if self._rng.random() < self.drop_probability:
            self.drops += 1
            return DropDecision.DROP_AND_PROBE
        return DropDecision.PASS


class ProportionalDropPolicy(DropPolicy):
    """The [2] baseline: uniform random drop of all victim-bound packets."""

    def __init__(self, drop_probability: float, rng) -> None:
        self.drop_probability = check_probability(
            "drop_probability", drop_probability
        )
        self._rng = rng
        self.decisions = 0
        self.drops = 0

    def decide(self, packet: "Packet", now: float) -> DropDecision:
        """Bernoulli(Pd) drop with no probe, no tables, no memory."""
        self.decisions += 1
        if self._rng.random() < self.drop_probability:
            self.drops += 1
            return DropDecision.DROP
        return DropDecision.PASS


@dataclass
class _TokenBucket:
    """Continuous token bucket (tokens are bytes)."""

    rate_bps: float
    burst_bytes: float
    tokens: float = 0.0
    last_refill: float = 0.0

    def admit(self, size_bytes: int, now: float) -> bool:
        elapsed = max(0.0, now - self.last_refill)
        self.tokens = min(
            self.burst_bytes, self.tokens + elapsed * self.rate_bps / 8.0
        )
        self.last_refill = now
        if self.tokens >= size_bytes:
            self.tokens -= size_bytes
            return True
        return False


class AggregateRateLimitPolicy(DropPolicy):
    """Pushback-style aggregate rate limiting of the victim-bound traffic.

    Admits up to ``limit_bps`` (with ``burst`` seconds of burst tolerance);
    everything beyond is dropped regardless of which flow it belongs to.
    """

    def __init__(self, limit_bps: float, burst: float = 0.1) -> None:
        check_positive("limit_bps", limit_bps)
        check_positive("burst", burst)
        self.limit_bps = float(limit_bps)
        self.burst = float(burst)
        self._bucket = _TokenBucket(
            rate_bps=self.limit_bps,
            burst_bytes=self.limit_bps * self.burst / 8.0,
            tokens=self.limit_bps * self.burst / 8.0,
        )
        self.decisions = 0
        self.drops = 0

    def decide(self, packet: "Packet", now: float) -> DropDecision:
        """Admit within the token budget; drop the excess."""
        self.decisions += 1
        if self._bucket.admit(packet.size, now):
            return DropDecision.PASS
        self.drops += 1
        return DropDecision.DROP

    def reset(self) -> None:
        """Refill the bucket."""
        self._bucket.tokens = self._bucket.burst_bytes
        self._bucket.last_refill = 0.0
