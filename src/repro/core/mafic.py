"""The MAFIC per-ATR agent: Figure 2's control flow as a link-head hook.

Attached at the head of an ingress router's uplink (the NS-2 Connector
seam), the agent examines every DATA packet bound for the protected
victim prefix while a pushback episode is active:

1. Illegal/unreachable claimed source  -> PDT, drop.
2. Flow in PDT                         -> drop.
3. Flow in NFT                         -> pass (normal routing).
4. Flow in SFT                         -> update its arrival rate, check
   the verdict timer, drop with probability ``Pd``.
5. Unknown flow                        -> policy decision: with
   probability ``Pd`` drop the packet, forge duplicate ACKs toward the
   claimed source, and admit the flow to the SFT with a ``2 x RTT``
   verdict timer; otherwise pass (the flow stays unknown and faces the
   gate again on its next packet).

At the verdict timer the flow's arrival rate over the probe window is
compared against the baseline captured at admission: a reduced rate is
the TCP-friendly response (move to NFT); an undiminished rate condemns
the flow to the PDT.

Deactivation ("Pushback Continue? -> No") ends dropping and flushes all
tables, per Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

from repro.core.config import MaficConfig
from repro.core.labels import FlowLabel, label_of_packet
from repro.core.policy import AdaptiveMaficPolicy, DropDecision, DropPolicy
from repro.core.probe import DupAckProber
from repro.core.tables import FlowTables, SftEntry, TableName
from repro.sim.packet import Packet, PacketType
from repro.util.stats import WindowedRate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.address import AddressSpace
    from repro.sim.engine import Simulator
    from repro.sim.link import SimplexLink
    from repro.sim.node import Router
    from repro.sim.trace import EventTrace


class DefenseObserver(Protocol):
    """Metrics seam: the agent reports every decision it takes.

    ``atr`` names the reporting agent's ingress router; one observer
    serves the whole defence line, so it is the only way a consumer can
    attribute a decision to an ATR.  It defaults to ``""`` so bare
    3-argument observers keep working.
    """

    def on_defense_drop(
        self, packet: Packet, reason: str, now: float, atr: str = ""
    ) -> None: ...

    def on_defense_pass(
        self, packet: Packet, now: float, atr: str = ""
    ) -> None: ...

    def on_verdict(
        self, label: FlowLabel, verdict: str, now: float, atr: str = ""
    ) -> None: ...


@dataclass
class MaficStats:
    """Internal counters (ground-truth-free; metrics live in observers)."""

    packets_examined: int = 0
    packets_dropped_probe: int = 0
    packets_dropped_pdt: int = 0
    packets_dropped_illegal: int = 0
    packets_dropped_policy: int = 0
    packets_passed: int = 0
    probes_initiated: int = 0
    verdicts_nice: int = 0
    verdicts_cut: int = 0
    verdicts_insufficient: int = 0
    activations: int = 0
    deactivations: int = 0


class MaficAgent:
    """One ATR's MAFIC instance.

    Parameters
    ----------
    sim, router:
        The clock and the ingress router this agent defends from.
    victim_matcher:
        Predicate over destination addresses: which packets are "destined
        to victim" (normally the victim subnet's ``contains``).
    config:
        The :class:`~repro.core.config.MaficConfig` knobs.
    rng:
        Random stream for the Bernoulli(Pd) gate.
    address_space:
        Legality oracle for claimed sources (Section III.A's PDT rule);
        ``None`` disables the illegal-source shortcut.
    policy:
        The probing decision policy; defaults to
        :class:`~repro.core.policy.AdaptiveMaficPolicy` with the
        config's ``Pd``.  Baseline policies (proportional drop, aggregate
        rate limit) plug in here for comparison runs — when a baseline
        returns plain DROP the agent drops without probing or tables.
    prober:
        Duplicate-ACK generator; defaults to a
        :class:`~repro.core.probe.DupAckProber` on ``router``.
    observer:
        Optional metrics observer.
    trace:
        Optional :class:`~repro.sim.trace.EventTrace`.
    """

    def __init__(
        self,
        sim: "Simulator",
        router: "Router",
        victim_matcher: Callable[[int], bool],
        config: MaficConfig | None = None,
        rng=None,
        address_space: "AddressSpace | None" = None,
        policy: DropPolicy | None = None,
        prober: DupAckProber | None = None,
        observer: "DefenseObserver | None" = None,
        trace: "EventTrace | None" = None,
    ) -> None:
        import numpy as np

        self.sim = sim
        self.router = router
        self.victim_matcher = victim_matcher
        self.config = config if config is not None else MaficConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.address_space = address_space
        if policy is None:
            from repro.perf import FLAGS

            if FLAGS.batched_sources:
                # This agent owns every draw on its stream (the gate in
                # _handle_suspicious and the policy's Bernoulli), so both
                # can share one prefetched buffer — same values, same
                # order, minus a numpy scalar dispatch per examined
                # packet.  An injected policy keeps the raw stream: the
                # agent cannot know who else draws from it.
                from repro.util.rng import UniformBuffer, UniformSource

                buffer = UniformBuffer(self._rng)
                self._draw_uniform = buffer.next
                policy = AdaptiveMaficPolicy(
                    self.config.drop_probability, UniformSource(buffer)
                )
            else:
                policy = AdaptiveMaficPolicy(
                    self.config.drop_probability, self._rng
                )
                self._draw_uniform = self._scalar_uniform
        else:
            self._draw_uniform = self._scalar_uniform
        self.policy = policy
        self.prober = (
            prober
            if prober is not None
            else DupAckProber(
                sim,
                router,
                dup_acks_per_probe=self.config.dup_acks_per_probe,
                ack_size=self.config.probe_ack_size,
            )
        )
        self.observer = observer
        self.trace = trace
        # Cached for the observer calls on the per-packet path.
        self._atr = router.name

        self.active = False
        self.tables = FlowTables()
        self.stats = MaficStats()
        # Arrival-rate monitors for every victim-bound flow seen while
        # active: "Calculate Arriving Rate" needs a pre-admission baseline.
        self._monitors: dict[FlowLabel, WindowedRate] = {}
        self._verdict_events: dict[FlowLabel, object] = {}
        #: Monitored packets required before SFT admission.  One suffices:
        #: a cold baseline cannot condemn a responsive flow because the
        #: verdict also requires ``min_packets_for_verdict`` arrivals and
        #: measures the trailing half-window, where a conforming TCP has
        #: already gone quiet.
        self.min_baseline_packets = 1

    # ------------------------------------------------------- control plane

    def activate(self, now: float | None = None) -> None:
        """Pushback start: begin adaptive dropping."""
        if self.active:
            return
        self.active = True
        self.stats.activations += 1
        if self.trace is not None:
            self.trace.record(self._now(now), "pushback.start", atr=self.router.name)

    def refresh(self, now: float | None = None) -> None:
        """Pushback refresh: keep going (no state change needed)."""
        if not self.active:
            self.activate(now)

    def deactivate(self, now: float | None = None) -> None:
        """Pushback stop: end dropping and flush all tables (Figure 2)."""
        if not self.active:
            return
        self.active = False
        self.stats.deactivations += 1
        for event in self._verdict_events.values():
            cancel = getattr(event, "cancel", None)
            if cancel is not None:
                cancel()
        self._verdict_events.clear()
        self._monitors.clear()
        self.tables.flush()
        self.policy.reset()
        if self.trace is not None:
            self.trace.record(self._now(now), "pushback.stop", atr=self.router.name)

    # ----------------------------------------------------------- data path

    def on_packet(self, packet: Packet, link: "SimplexLink", now: float) -> bool:
        """LinkHook entry: True lets the packet continue, False drops it."""
        if not self.active:
            return True
        if packet.ptype is not PacketType.DATA:
            return True
        if not self.victim_matcher(packet.dst_ip):
            return True
        self.stats.packets_examined += 1
        label = label_of_packet(packet)

        # Illegal or unreachable claimed source: straight to the PDT.
        if (
            self.config.drop_illegal_sources
            and self.address_space is not None
            and not self.address_space.is_legal_source(packet.src_ip)
        ):
            if label not in self.tables.pdt:
                self._enforce_pdt_cap()
                self.tables.condemn(label, now, reason="illegal_source")
                self._notify_verdict(label, "illegal_source", now)
            return self._drop(packet, "illegal", now)

        # Inline table dispatch (PDT, NFT, SFT order, per Figure 2): one
        # dict probe per table instead of lookup() followed by a second
        # keyed access in the handler.
        tables = self.tables
        pdt_entry = tables.pdt.get(label)
        if pdt_entry is not None:
            pdt_entry.packets_dropped += 1
            return self._drop(packet, "pdt", now)
        if label in tables.nft:
            return self._pass_nice(packet, label, now)
        if label in tables.sft:
            return self._handle_suspicious(packet, label, now)
        return self._handle_unknown(packet, label, now)

    # ------------------------------------------------------ table handlers

    def _pass_nice(self, packet: Packet, label: FlowLabel, now: float) -> bool:
        entry = self.tables.nft[label]
        entry.packets_passed += 1
        if (
            self.config.renotice_interval > 0
            and now - entry.admitted_at >= self.config.renotice_interval
        ):
            # Verdict has aged out: forget it so the flow is re-probed.
            self.tables.demote_from_nice(label)
        self.stats.packets_passed += 1
        if self.observer is not None:
            self.observer.on_defense_pass(packet, now, self._atr)
        return True

    def _handle_suspicious(self, packet: Packet, label: FlowLabel, now: float) -> bool:
        entry = self.tables.sft[label]
        entry.packets_seen += 1
        entry.last_arrival = now
        if entry.monitor is not None:
            entry.monitor.record(now)
        monitor = self._monitors.get(label)
        if monitor is not None:
            monitor.record(now)
        if now >= entry.deadline:
            # Data-driven timeout check (Figure 2); the scheduled verdict
            # event normally fires first, but a packet racing it decides
            # identically.  Re-dispatch against the post-verdict table.
            self._verdict(label)
            table = self.tables.lookup(label)
            if table is TableName.PDT:
                self.tables.pdt[label].packets_dropped += 1
                return self._drop(packet, "pdt", now)
            return self._pass_nice(packet, label, now)
        if self._draw_uniform() < self.config.drop_probability:
            entry.packets_dropped += 1
            return self._drop(packet, "probe", now)
        self.stats.packets_passed += 1
        if self.observer is not None:
            self.observer.on_defense_pass(packet, now, self._atr)
        return True

    def _handle_unknown(self, packet: Packet, label: FlowLabel, now: float) -> bool:
        monitor = self._monitors.get(label)
        if monitor is None:
            monitor = WindowedRate(self.config.rate_window)
            self._monitors[label] = monitor
        monitor.record(now)

        decision = self.policy.decide(packet, now)
        if decision is DropDecision.PASS:
            self.stats.packets_passed += 1
            if self.observer is not None:
                self.observer.on_defense_pass(packet, now, self._atr)
            return True
        if decision is DropDecision.DROP:
            # Baseline policies (proportional, rate-limit) drop blindly.
            return self._drop(packet, "policy", now)

        # DROP_AND_PROBE: drop this packet and send the duplicate-ACK
        # probe.  Admit to the SFT once the baseline has enough samples;
        # otherwise the flow faces the gate again on its next packet.
        self.prober.probe(packet)
        self.stats.probes_initiated += 1
        if self.trace is not None:
            self.trace.record(now, "probe.sent", flow=int(label), atr=self.router.name)
        if monitor.count(now) >= self.min_baseline_packets:
            self._admit_suspicious(packet, label, monitor, now)
        return self._drop(packet, "probe", now)

    def _admit_suspicious(
        self, packet: Packet, label: FlowLabel, monitor: WindowedRate, now: float
    ) -> None:
        cap = self.config.max_sft_entries
        if cap and len(self.tables.sft) >= cap:
            evicted = self.tables.evict_oldest_sft()
            if evicted is not None:
                event = self._verdict_events.pop(evicted.label, None)
                cancel = getattr(event, "cancel", None)
                if cancel is not None:
                    cancel()
                self._monitors.pop(evicted.label, None)
        rtt = self._estimate_rtt(packet, now)
        window = self.config.probe_window(rtt)
        # The verdict monitor spans only the second half of the probe
        # window: a conforming TCP may still flush up to a full window of
        # in-flight segments during the first RTT; its *response* (the
        # stall after loss) shows in the second RTT.
        entry = SftEntry(
            label=label,
            probe_started=now,
            deadline=now + window,
            baseline_rate=monitor.rate(now),
            rtt_estimate=rtt,
            packets_seen=1,
            packets_dropped=1,
            monitor=WindowedRate(window / 2.0),
        )
        entry.monitor.record(now)
        self.tables.admit_suspicious(entry)
        self._verdict_events[label] = self.sim.schedule_at(
            entry.deadline, self._verdict, label
        )

    # -------------------------------------------------------------- verdict

    def _verdict(self, label: FlowLabel) -> None:
        entry = self.tables.sft.get(label)
        if entry is None:
            return
        now = self.sim.now
        event = self._verdict_events.pop(label, None)
        if event is not None:
            cancel = getattr(event, "cancel", None)
            if cancel is not None:
                cancel()
        window = max(1e-9, entry.deadline - entry.probe_started)
        half = window / 2.0
        # Response-period rate: arrivals in the trailing half-window.  A
        # conforming TCP flushes its in-flight pipeline during the first
        # half (up to ~1 RTT) and stalls in the second; an unresponsive
        # sender is flat across both.  Comparing the halves makes the
        # verdict self-relative, so a cold pre-admission baseline (the
        # flow's very first packet triggered the probe) cannot condemn a
        # responsive flow.
        second_half_count = entry.monitor.count(now) if entry.monitor is not None else 0
        probe_rate = second_half_count / half
        first_half_rate = max(0, entry.packets_seen - second_half_count) / half
        reference = max(entry.baseline_rate, first_half_rate)
        if entry.packets_seen < self.config.min_packets_for_verdict:
            # Too quiet to judge: that silence IS the TCP-friendly response.
            self.tables.promote_to_nice(label, now)
            self.stats.verdicts_insufficient += 1
            self.stats.verdicts_nice += 1
            self._notify_verdict(label, "nice", now)
            return
        if probe_rate <= self.config.response_ratio * reference:
            self.tables.promote_to_nice(label, now)
            self.stats.verdicts_nice += 1
            self._notify_verdict(label, "nice", now)
        else:
            self._enforce_pdt_cap()
            self.tables.condemn(label, now, reason="unresponsive")
            self.stats.verdicts_cut += 1
            self._notify_verdict(label, "cut", now)

    def _notify_verdict(self, label: FlowLabel, verdict: str, now: float) -> None:
        if self.trace is not None:
            category = {
                "nice": "flow.nice",
                "cut": "flow.cut",
                "illegal_source": "flow.cut",
            }[verdict]
            self.trace.record(now, category, flow=int(label), atr=self.router.name)
        if self.observer is not None:
            self.observer.on_verdict(label, verdict, now, self._atr)

    def _enforce_pdt_cap(self) -> None:
        cap = self.config.max_pdt_entries
        if cap and len(self.tables.pdt) >= cap:
            self.tables.evict_oldest_pdt()

    # -------------------------------------------------------------- helpers

    def _scalar_uniform(self) -> float:
        return float(self._rng.random())

    def _estimate_rtt(self, packet: Packet, now: float) -> float | None:
        """RTT from the TCP timestamp echo when present.

        A data packet's ``ts_ecr`` echoes the peer's last timestamp; the
        gap ``now - ts_ecr`` upper-bounds the source<->here<->peer loop.
        Senders that never saw an ACK carry ``ts_ecr == 0`` — fall back to
        the configured default.
        """
        if packet.ts_ecr > 0:
            sample = now - packet.ts_ecr
            if 0 < sample < 10.0:
                # The echo covers peer->source->here; the configured
                # default floors it so the probe window never undershoots
                # the true loop (which also includes here->peer).
                return max(sample, self.config.default_rtt)
        return None

    def _drop(self, packet: Packet, reason: str, now: float) -> bool:
        stats = self.stats
        if reason == "probe":
            stats.packets_dropped_probe += 1
        elif reason == "pdt":
            stats.packets_dropped_pdt += 1
        elif reason == "illegal":
            stats.packets_dropped_illegal += 1
        elif reason == "policy":
            # Baseline policies (proportional, rate-limit) drop without
            # probing; charging them to the probe counter overstated the
            # probing cost in baseline comparison runs.
            stats.packets_dropped_policy += 1
        else:
            stats.packets_dropped_probe += 1
        if self.trace is not None:
            self.trace.record(
                now, f"drop.{reason}", flow=packet.flow_hash, atr=self.router.name
            )
        if self.observer is not None:
            self.observer.on_defense_drop(packet, reason, now, self._atr)
        return False

    def _now(self, now: float | None) -> float:
        return self.sim.now if now is None else now

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MaficAgent(atr={self.router.name}, active={self.active}, "
            f"tables={self.tables.occupancy()})"
        )
