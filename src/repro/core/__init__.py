"""MAFIC core: the adaptive malicious-flow identification and cutoff
algorithm (paper Section III).

The per-ATR agent (:class:`~repro.core.mafic.MaficAgent`) implements the
Figure-2 state machine: on a pushback request it probes every flow bound
for the victim by dropping packets with probability ``Pd`` and forging
duplicate ACKs toward the claimed source; flows whose arrival rate falls
within ``2 x RTT`` move to the Nice Flow Table and pass untouched, the
rest move to the Permanently Drop Table and are cut completely.  Packets
with illegal/unreachable sources go straight to the PDT.

Baseline policies (:mod:`repro.core.policy`) reproduce the comparison
points the paper motivates: the proportionate random dropper of [2] and a
static aggregate-rate-limiting pushback.
"""

from repro.core.config import MaficConfig
from repro.core.labels import FlowLabel, label_of_packet
from repro.core.mafic import MaficAgent
from repro.core.policy import (
    AdaptiveMaficPolicy,
    AggregateRateLimitPolicy,
    DropDecision,
    DropPolicy,
    PassthroughPolicy,
    ProportionalDropPolicy,
)
from repro.core.probe import DupAckProber
from repro.core.tables import FlowTables, NftEntry, PdtEntry, SftEntry, TableName

__all__ = [
    "AdaptiveMaficPolicy",
    "AggregateRateLimitPolicy",
    "DropDecision",
    "DropPolicy",
    "DupAckProber",
    "FlowLabel",
    "FlowTables",
    "MaficAgent",
    "MaficConfig",
    "NftEntry",
    "PassthroughPolicy",
    "PdtEntry",
    "ProportionalDropPolicy",
    "SftEntry",
    "TableName",
    "label_of_packet",
]
