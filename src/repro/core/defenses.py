"""Defence lines: the pluggable "what runs at the ATRs" component.

A defence builder receives a :class:`DefenseContext` (the built topology
plus the experiment config, RNG registry, metrics observer, and trace)
and returns the per-ingress :class:`~repro.core.mafic.MaficAgent` map it
installed.  The agent is the shared chassis — flow tables, activation
timers, head-hook plumbing — and each defence differs in the
:class:`~repro.core.policy.DropPolicy` it runs and in any substrate it
installs (e.g. swapping link queues for RED).

Experiment-facing defences live in the :data:`DEFENSES` registry.  New
defence variants register here and become reachable by name
(``ExperimentConfig(defense="...")``) with no edits to the scenario
composer, the config, or the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.config import MaficConfig
from repro.core.mafic import MaficAgent
from repro.core.policy import (
    AggregateRateLimitPolicy,
    DropPolicy,
    ProportionalDropPolicy,
)
from repro.sim.queues import REDQueue
from repro.util.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig
    from repro.metrics.collectors import DefenseMetricsCollector
    from repro.sim.topology import Topology
    from repro.sim.trace import EventTrace
    from repro.util.rng import RngRegistry


@dataclass
class DefenseContext:
    """Everything a defence builder may wire against."""

    topology: "Topology"
    config: "ExperimentConfig"
    rngs: "RngRegistry"
    collector: "DefenseMetricsCollector"
    trace: "EventTrace"


#: Defence builders of type ``(DefenseContext, **defense_args) ->
#: dict[str, MaficAgent]`` (one agent per ingress it defends; empty for
#: the undefended control).  The config's ``defense_args`` dict arrives
#: as keyword arguments.
DEFENSES: "Registry[Callable[..., dict[str, MaficAgent]]]" = (
    Registry("defense")
)

#: ``(config, rng) -> DropPolicy``; ``None`` in its place means the
#: agent builds MAFIC's own adaptive probing policy.
PolicyFactory = Callable[["ExperimentConfig", object], DropPolicy]


def install_agent_line(
    ctx: DefenseContext,
    policy_factory: PolicyFactory | None,
    adaptive: bool,
) -> dict[str, MaficAgent]:
    """Put one agent at every ingress uplink (counting hooks run first).

    ``adaptive=False`` strips the PDT legality shortcut and probing —
    baselines drop blindly; those belong to MAFIC alone.
    """
    topology, config = ctx.topology, ctx.config
    victim_subnet = topology.subnet_of_router[topology.victim_router_name]
    agents: dict[str, MaficAgent] = {}
    for name in topology.ingress_names:
        router = topology.routers[name]
        agent_rng = ctx.rngs.stream("mafic", name)
        agent = MaficAgent(
            topology.sim,
            router,
            victim_matcher=victim_subnet.contains,
            config=config.mafic,
            rng=agent_rng,
            address_space=topology.address_space,
            policy=(
                policy_factory(config, agent_rng)
                if policy_factory is not None
                else None
            ),
            observer=ctx.collector,
            trace=ctx.trace,
        )
        if not adaptive:
            agent.config = MaficConfig(
                drop_probability=config.mafic.drop_probability,
                drop_illegal_sources=False,
            )
        # Counting first (arrival view), then the dropper.
        topology.ingress_uplink(name).add_head_hook(agent)
        agents[name] = agent
    return agents


@DEFENSES.register("mafic")
def _build_mafic(ctx: DefenseContext) -> dict[str, MaficAgent]:
    """MAFIC as published: adaptive Bernoulli(Pd) probing with per-flow
    verdicts and the PDT legality shortcut."""
    return install_agent_line(ctx, None, adaptive=True)


@DEFENSES.register("proportional")
def _build_proportional(ctx: DefenseContext) -> dict[str, MaficAgent]:
    """The authors' earlier proportionate dropper [2]: every victim-bound
    packet dropped with probability Pd, no probing, no memory."""
    return install_agent_line(
        ctx,
        lambda config, rng: ProportionalDropPolicy(
            config.mafic.drop_probability, rng
        ),
        adaptive=False,
    )


@DEFENSES.register("rate_limit", aliases=("rate-limit", "ratelimit"))
def _build_rate_limit(ctx: DefenseContext) -> dict[str, MaficAgent]:
    """Pushback-style aggregate rate limiting: admit the victim-bound
    aggregate up to a per-ATR token-bucket budget, drop the excess."""
    return install_agent_line(
        ctx,
        lambda config, rng: AggregateRateLimitPolicy(config.rate_limit_bps),
        adaptive=False,
    )


@DEFENSES.register("none", aliases=("off", "undefended"))
def _build_none(ctx: DefenseContext) -> dict[str, MaficAgent]:
    """Undefended control: no agents, nothing dropped."""
    return {}


@DEFENSES.register("red_rate_limit", aliases=("red-rate-limit", "red"))
def _build_red_rate_limit(
    ctx: DefenseContext,
    min_thresh: float | None = None,
    max_thresh: float | None = None,
) -> dict[str, MaficAgent]:
    """RED on the ingress uplinks plus aggregate rate limiting: early
    random drops shave standing queues while the token bucket caps the
    victim-bound aggregate — the classic queueing-level answer, kept as
    a baseline against MAFIC's per-flow verdicts.  ``defense_args`` may
    pin the RED thresholds instead of the capacity-derived defaults."""
    capacity = ctx.config.queue_capacity
    if min_thresh is None:
        min_thresh = max(2.0, 0.05 * capacity)
    if max_thresh is None:
        max_thresh = max(min_thresh * 3.0, 0.25 * capacity)
    for name in ctx.topology.ingress_names:
        ctx.topology.ingress_uplink(name).queue = REDQueue(
            capacity=capacity,
            min_thresh=min_thresh,
            max_thresh=max_thresh,
            rng=ctx.rngs.stream("red", name),
        )
    return install_agent_line(
        ctx,
        lambda config, rng: AggregateRateLimitPolicy(config.rate_limit_bps),
        adaptive=False,
    )
