"""The three MAFIC flow tables: SFT, NFT, PDT.

* **SFT** (Suspicious Flow Table) — flows currently under probe: dropped
  packets' timestamps, the pre-probe baseline rate, and the verdict timer.
* **NFT** (Nice Flow Table) — flows that responded to the probe; passed
  untouched from then on.
* **PDT** (Permanently Drop Table) — flows judged unresponsive (or with
  illegal sources); every packet dropped.

Tables are keyed by :class:`~repro.core.labels.FlowLabel` (hashed
4-tuples), never by raw addresses, per Section III.B.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.labels import FlowLabel
from repro.util.stats import WindowedRate


class TableName(Enum):
    """Which table a flow currently sits in."""

    SFT = "sft"
    NFT = "nft"
    PDT = "pdt"


@dataclass
class SftEntry:
    """Probe state of one suspicious flow."""

    label: FlowLabel
    probe_started: float
    deadline: float
    baseline_rate: float  # packets/s before the probe began
    rtt_estimate: float | None = None
    packets_seen: int = 0
    packets_dropped: int = 0
    monitor: WindowedRate | None = None
    last_arrival: float | None = None


@dataclass
class NftEntry:
    """A flow judged nice (TCP-friendly)."""

    label: FlowLabel
    admitted_at: float
    probe_drops: int = 0  # packets it lost during its probe
    packets_passed: int = 0


@dataclass
class PdtEntry:
    """A flow condemned to permanent drop."""

    label: FlowLabel
    condemned_at: float
    reason: str  # "unresponsive" | "illegal_source"
    packets_dropped: int = 0


@dataclass
class TableCounters:
    """Aggregate occupancy/traffic counters across the three tables."""

    sft_admissions: int = 0
    nft_admissions: int = 0
    pdt_admissions: int = 0
    sft_evictions: int = 0
    pdt_evictions: int = 0
    flushes: int = 0


class FlowTables:
    """The SFT/NFT/PDT triple with the transitions of Figure 2."""

    def __init__(self) -> None:
        self.sft: dict[FlowLabel, SftEntry] = {}
        self.nft: dict[FlowLabel, NftEntry] = {}
        self.pdt: dict[FlowLabel, PdtEntry] = {}
        self.counters = TableCounters()

    # ------------------------------------------------------------- lookups

    def lookup(self, label: FlowLabel) -> TableName | None:
        """Which table holds ``label``, or None when unknown.

        Checked in PDT, NFT, SFT order — matching Figure 2's decision
        chain (a condemned flow must stay condemned even if a stale SFT
        entry lingers).
        """
        if label in self.pdt:
            return TableName.PDT
        if label in self.nft:
            return TableName.NFT
        if label in self.sft:
            return TableName.SFT
        return None

    def __contains__(self, label: FlowLabel) -> bool:
        return self.lookup(label) is not None

    # --------------------------------------------------------- transitions

    def admit_suspicious(self, entry: SftEntry) -> None:
        """Start probing a new flow."""
        if entry.label in self.sft:
            raise ValueError(f"{entry.label} is already in the SFT")
        if entry.label in self.pdt:
            raise ValueError(f"{entry.label} is already condemned")
        self.sft[entry.label] = entry
        self.counters.sft_admissions += 1

    def promote_to_nice(self, label: FlowLabel, now: float) -> NftEntry:
        """SFT -> NFT: the flow responded to the probe."""
        sft_entry = self.sft.pop(label, None)
        if sft_entry is None:
            raise KeyError(f"{label} is not in the SFT")
        entry = NftEntry(
            label=label,
            admitted_at=now,
            probe_drops=sft_entry.packets_dropped,
        )
        self.nft[label] = entry
        self.counters.nft_admissions += 1
        return entry

    def condemn(self, label: FlowLabel, now: float, reason: str) -> PdtEntry:
        """SFT (or nowhere) -> PDT: cut the flow permanently."""
        self.sft.pop(label, None)
        self.nft.pop(label, None)
        existing = self.pdt.get(label)
        if existing is not None:
            return existing
        entry = PdtEntry(label=label, condemned_at=now, reason=reason)
        self.pdt[label] = entry
        self.counters.pdt_admissions += 1
        return entry

    def demote_from_nice(self, label: FlowLabel) -> None:
        """Remove an NFT verdict so the flow can be re-probed."""
        self.nft.pop(label, None)

    def flush(self) -> None:
        """Clear everything — Figure 2's "End dropping & flush all tables"."""
        self.sft.clear()
        self.nft.clear()
        self.pdt.clear()
        self.counters.flushes += 1

    # ------------------------------------------------------------ eviction

    def evict_oldest_sft(self) -> SftEntry | None:
        """Remove and return the longest-resident SFT entry (None if empty).

        Dicts preserve insertion order, so the first key is the entry
        admitted earliest.
        """
        for label in self.sft:
            entry = self.sft.pop(label)
            self.counters.sft_evictions += 1
            return entry
        return None

    def evict_oldest_pdt(self) -> PdtEntry | None:
        """Remove and return the longest-condemned PDT entry (None if empty)."""
        for label in self.pdt:
            entry = self.pdt.pop(label)
            self.counters.pdt_evictions += 1
            return entry
        return None

    # ----------------------------------------------------------- inventory

    def expired_sft(self, now: float) -> list[SftEntry]:
        """SFT entries whose verdict timer has passed."""
        return [entry for entry in self.sft.values() if now >= entry.deadline]

    def occupancy(self) -> dict[str, int]:
        """Current table sizes."""
        return {"sft": len(self.sft), "nft": len(self.nft), "pdt": len(self.pdt)}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        occ = self.occupancy()
        return f"FlowTables(sft={occ['sft']}, nft={occ['nft']}, pdt={occ['pdt']})"
