"""The paper's summary rates, folded from the collectors.

Exact definitions used (documented once, here, and referenced by
EXPERIMENTS.md):

* **α (accuracy)** — attack packets dropped by the defence line divided
  by attack packets *examined* by the defence line (i.e. arriving at the
  ATRs while pushback is active).  Section V.A: "the percentage of
  dropped malicious packets among total number of malicious packets that
  arrive at the ATRs".
* **β (traffic reduction)** — relative drop in the victim's arrival rate
  between a short window ending at defence activation and the probing
  phase that follows (offset a quarter of the probe timer to let queued
  packets flush, spanning one probe timer).  Section V.B reports the cut
  observed "within a time period of 2 x RTT" of the trigger — i.e. the
  probing phase, which is what this window captures.
* **θp (false positive)** — packets of *well-behaved* flows (legitimate
  AND responsive) dropped because the detector classified their flow
  malicious (PDT drops), divided by all packets examined.  Probe-phase
  losses are charged to Lr, not θp: they are the probing cost, not a
  classification.
* **θn (false negative)** — attack packets that crossed the defence line
  undetected (passed an ATR while active) divided by attack packets
  examined.
* **Lr (legitimate-packet dropping rate)** — all defence drops of
  well-behaved flows (probing + any subsequent PDT drops) divided by
  well-behaved packets examined.  Section V.D: "packets in well-behaved
  flows dropped during the probing phase and the subsequent dropping
  process".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.collectors import (
    DefenseMetricsCollector,
    FlowTruth,
    StreamingVictimCollector,
    VictimMetricsCollector,
)


#: Default β peak-measurement window ending at activation (seconds).
#: Shared with the runner so a streaming victim collector accumulates
#: exactly the windows :func:`summarize` will ask for.
DEFAULT_PRE_WINDOW = 0.2


@dataclass
class MetricsSummary:
    """One run's headline numbers (fractions in [0, 1], not percent)."""

    accuracy: float
    traffic_reduction: float
    false_positive_rate: float
    false_negative_rate: float
    legit_drop_rate: float
    # Supporting raw counts for reporting/debugging.
    attack_examined: int = 0
    attack_dropped: int = 0
    wellbehaved_examined: int = 0
    wellbehaved_dropped: int = 0
    wellbehaved_pdt_drops: int = 0
    total_examined: int = 0
    victim_rate_before_bps: float = 0.0
    victim_rate_after_bps: float = 0.0

    def as_percent(self) -> dict[str, float]:
        """The five rates as percentages (paper-style)."""
        return {
            "alpha": 100.0 * self.accuracy,
            "beta": 100.0 * self.traffic_reduction,
            "theta_p": 100.0 * self.false_positive_rate,
            "theta_n": 100.0 * self.false_negative_rate,
            "Lr": 100.0 * self.legit_drop_rate,
        }


def summarize(
    defense: DefenseMetricsCollector,
    victim: VictimMetricsCollector | StreamingVictimCollector | None = None,
    reduction_window: float = 0.12,
    pre_window: float = DEFAULT_PRE_WINDOW,
) -> MetricsSummary:
    """Fold collectors into a :class:`MetricsSummary`.

    ``reduction_window`` is the probing-phase length for β (callers pass
    the configured probe timer, 2 x RTT); ``pre_window`` is the
    peak-measurement window ending at activation.
    """
    attack = defense.of(FlowTruth.ATTACK)
    nice = defense.of(FlowTruth.TCP_LEGIT)

    accuracy = attack.dropped / attack.examined if attack.examined else 0.0
    theta_n = attack.passed / attack.examined if attack.examined else 0.0

    total = defense.total_examined
    theta_p = nice.dropped_pdt / total if total else 0.0
    lr = nice.dropped / nice.examined if nice.examined else 0.0

    beta = 0.0
    rate_before = rate_after = 0.0
    if victim is not None and victim.defense_activated_at is not None:
        # Both the buffered and the streaming victim collector expose
        # beta_rates with identical arithmetic; see their docstrings.
        rate_before, rate_after = victim.beta_rates(reduction_window, pre_window)
        if rate_before > 0:
            beta = max(0.0, 1.0 - rate_after / rate_before)

    return MetricsSummary(
        accuracy=accuracy,
        traffic_reduction=beta,
        false_positive_rate=theta_p,
        false_negative_rate=theta_n,
        legit_drop_rate=lr,
        attack_examined=attack.examined,
        attack_dropped=attack.dropped,
        wellbehaved_examined=nice.examined,
        wellbehaved_dropped=nice.dropped,
        wellbehaved_pdt_drops=nice.dropped_pdt,
        total_examined=total,
        victim_rate_before_bps=rate_before,
        victim_rate_after_bps=rate_after,
    )
