"""Time-series construction for the Fig. 4(b) bandwidth plots."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class BandwidthSeries:
    """Victim-arrival bandwidth bucketed into fixed bins.

    ``times`` are bin centres; rates are kbps, split by ground truth.
    """

    times: list[float]
    total_kbps: list[float]
    attack_kbps: list[float]
    legit_kbps: list[float]

    @classmethod
    def from_arrivals(
        cls,
        arrivals: list[tuple[float, int, bool]],
        start: float,
        end: float,
        bin_width: float = 0.05,
    ) -> "BandwidthSeries":
        """Bucket raw (time, size, is_attack) arrival events.

        Events outside [start, end) are ignored.
        """
        if end <= start:
            raise ValueError("end must exceed start")
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        n_bins = max(1, int(math.ceil((end - start) / bin_width)))
        total = [0.0] * n_bins
        attack = [0.0] * n_bins
        legit = [0.0] * n_bins
        for t, size, is_attack in arrivals:
            if not start <= t < end:
                continue
            idx = min(n_bins - 1, int((t - start) / bin_width))
            kbits = size * 8.0 / 1e3
            total[idx] += kbits
            if is_attack:
                attack[idx] += kbits
            else:
                legit[idx] += kbits
        # kbits per bin -> kbps.
        scale = 1.0 / bin_width
        times = [start + (i + 0.5) * bin_width for i in range(n_bins)]
        return cls(
            times=times,
            total_kbps=[v * scale for v in total],
            attack_kbps=[v * scale for v in attack],
            legit_kbps=[v * scale for v in legit],
        )

    def peak_total_kbps(self) -> float:
        """Largest total-rate bin."""
        return max(self.total_kbps) if self.total_kbps else 0.0

    def mean_total_kbps(self, t0: float, t1: float) -> float:
        """Mean of total-rate bins whose centres fall in [t0, t1)."""
        values = [
            rate
            for time, rate in zip(self.times, self.total_kbps)
            if t0 <= time < t1
        ]
        return sum(values) / len(values) if values else 0.0

    def __len__(self) -> int:
        return len(self.times)


class StreamingBandwidthSeries:
    """Windowed streaming construction of a :class:`BandwidthSeries`.

    Feed arrival events one at a time with :meth:`observe`; call
    :meth:`finish` once for the finished series.  Memory is bounded by
    the bin count (three float lists), never by the arrival count — the
    whole point of the sink refactor for long runs.

    **Bit-exactness contract:** the per-event arithmetic (bin index,
    kbit conversion, accumulation order) and the final kbps scaling are
    the *same operations in the same order* as
    :meth:`BandwidthSeries.from_arrivals` applied to the same arrival
    sequence, so the two paths produce float-identical series.  The
    equivalence test in ``tests/obs`` pins this against randomized
    arrival streams, and the golden master pins it end-to-end.
    """

    def __init__(self, start: float, end: float, bin_width: float = 0.05) -> None:
        if end <= start:
            raise ValueError("end must exceed start")
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.start = float(start)
        self.end = float(end)
        self.bin_width = float(bin_width)
        self.n_bins = max(1, int(math.ceil((end - start) / bin_width)))
        self._total = [0.0] * self.n_bins
        self._attack = [0.0] * self.n_bins
        self._legit = [0.0] * self.n_bins
        self.observed = 0

    def observe(self, t: float, size: int, is_attack: bool) -> None:
        """Fold one (time, size, is_attack) arrival into its bin."""
        if not self.start <= t < self.end:
            return
        idx = min(self.n_bins - 1, int((t - self.start) / self.bin_width))
        kbits = size * 8.0 / 1e3
        self._total[idx] += kbits
        if is_attack:
            self._attack[idx] += kbits
        else:
            self._legit[idx] += kbits
        self.observed += 1

    def finish(self) -> BandwidthSeries:
        """The completed series (kbits per bin scaled to kbps)."""
        scale = 1.0 / self.bin_width
        times = [
            self.start + (i + 0.5) * self.bin_width for i in range(self.n_bins)
        ]
        return BandwidthSeries(
            times=times,
            total_kbps=[v * scale for v in self._total],
            attack_kbps=[v * scale for v in self._attack],
            legit_kbps=[v * scale for v in self._legit],
        )
