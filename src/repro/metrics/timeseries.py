"""Time-series construction for the Fig. 4(b) bandwidth plots."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class BandwidthSeries:
    """Victim-arrival bandwidth bucketed into fixed bins.

    ``times`` are bin centres; rates are kbps, split by ground truth.
    """

    times: list[float]
    total_kbps: list[float]
    attack_kbps: list[float]
    legit_kbps: list[float]

    @classmethod
    def from_arrivals(
        cls,
        arrivals: list[tuple[float, int, bool]],
        start: float,
        end: float,
        bin_width: float = 0.05,
    ) -> "BandwidthSeries":
        """Bucket raw (time, size, is_attack) arrival events.

        Events outside [start, end) are ignored.
        """
        if end <= start:
            raise ValueError("end must exceed start")
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        n_bins = max(1, int(math.ceil((end - start) / bin_width)))
        total = [0.0] * n_bins
        attack = [0.0] * n_bins
        legit = [0.0] * n_bins
        for t, size, is_attack in arrivals:
            if not start <= t < end:
                continue
            idx = min(n_bins - 1, int((t - start) / bin_width))
            kbits = size * 8.0 / 1e3
            total[idx] += kbits
            if is_attack:
                attack[idx] += kbits
            else:
                legit[idx] += kbits
        # kbits per bin -> kbps.
        scale = 1.0 / bin_width
        times = [start + (i + 0.5) * bin_width for i in range(n_bins)]
        return cls(
            times=times,
            total_kbps=[v * scale for v in total],
            attack_kbps=[v * scale for v in attack],
            legit_kbps=[v * scale for v in legit],
        )

    def peak_total_kbps(self) -> float:
        """Largest total-rate bin."""
        return max(self.total_kbps) if self.total_kbps else 0.0

    def mean_total_kbps(self, t0: float, t1: float) -> float:
        """Mean of total-rate bins whose centres fall in [t0, t1)."""
        values = [
            rate
            for time, rate in zip(self.times, self.total_kbps)
            if t0 <= time < t1
        ]
        return sum(values) / len(values) if values else 0.0

    def __len__(self) -> int:
        return len(self.times)
