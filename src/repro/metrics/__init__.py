"""Evaluation metrics: the paper's Table-I quantities.

* α — attacking-packet dropping accuracy (Section V.A)
* β — traffic reduction rate (Section V.B)
* θp — false positive rate (Section V.C)
* θn — false negative rate (Section V.C)
* Lr — legitimate-packet dropping rate (Section V.D)

Collectors hang off the defence agents (ground-truth classification of
every drop/pass decision) and off the victim sink (arrival accounting and
time series); :mod:`repro.metrics.rates` folds them into the summary
rates.
"""

from repro.metrics.collectors import (
    DefenseMetricsCollector,
    FlowTruth,
    VictimMetricsCollector,
)
from repro.metrics.flowreport import FlowFate, FlowReport, build_flow_report
from repro.metrics.rates import MetricsSummary, summarize
from repro.metrics.timeseries import BandwidthSeries

__all__ = [
    "BandwidthSeries",
    "DefenseMetricsCollector",
    "FlowFate",
    "FlowReport",
    "FlowTruth",
    "MetricsSummary",
    "VictimMetricsCollector",
    "build_flow_report",
    "summarize",
]
