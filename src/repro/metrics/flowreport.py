"""Per-flow fate reports.

Aggregates everything a run learned about each flow — ground truth,
verdicts, drop counts, victim arrivals — into one row per flow.  Used by
examples and debugging; the figure metrics never need this granularity,
but a downstream user validating the defence on their own workload does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.metrics.collectors import FlowTruth

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenario import BuiltScenario


@dataclass
class FlowFate:
    """One flow's observed history across the run."""

    flow_hash: int
    truth: FlowTruth
    verdict: str | None = None  # "nice" | "cut" | "illegal_source" | None
    verdict_time: float | None = None
    packets_sent: int = 0
    victim_arrivals: int = 0
    description: str = ""

    @property
    def correctly_judged(self) -> bool | None:
        """Whether the verdict matches ground truth (None = no verdict).

        "Correct" follows the paper's semantics: attack flows should be
        cut; well-behaved (responsive legit) flows should be nice.
        Unresponsive legitimate flows have no "correct" verdict — cutting
        them is the accepted collateral — so they report None.
        """
        if self.verdict is None:
            return None
        if self.truth is FlowTruth.ATTACK:
            return self.verdict in ("cut", "illegal_source")
        if self.truth is FlowTruth.TCP_LEGIT:
            return self.verdict == "nice"
        return None


@dataclass
class FlowReport:
    """All flow fates of one run, with summary helpers."""

    fates: dict[int, FlowFate] = field(default_factory=dict)

    def of_truth(self, truth: FlowTruth) -> list[FlowFate]:
        """Fates of one ground-truth class."""
        return [f for f in self.fates.values() if f.truth is truth]

    def misjudged(self) -> list[FlowFate]:
        """Flows whose verdict contradicts ground truth."""
        return [
            f for f in self.fates.values() if f.correctly_judged is False
        ]

    def verdict_counts(self) -> dict[str, int]:
        """verdict -> count (verdict None reported as 'none')."""
        counts: dict[str, int] = {}
        for fate in self.fates.values():
            key = fate.verdict if fate.verdict is not None else "none"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def to_rows(self) -> list[list]:
        """Header + one row per flow (for CSV export)."""
        rows: list[list] = [[
            "flow_hash", "truth", "verdict", "verdict_time",
            "packets_sent", "victim_arrivals", "correct",
        ]]
        for fate in sorted(self.fates.values(), key=lambda f: f.flow_hash):
            rows.append([
                f"{fate.flow_hash:016x}",
                fate.truth.value,
                fate.verdict or "",
                fate.verdict_time if fate.verdict_time is not None else "",
                fate.packets_sent,
                fate.victim_arrivals,
                "" if fate.correctly_judged is None else fate.correctly_judged,
            ])
        return rows


def build_flow_report(scenario: "BuiltScenario") -> FlowReport:
    """Assemble the per-flow report from a finished scenario."""
    report = FlowReport()

    # Seed rows from ground truth.
    for flow_hash, truth in scenario.flow_truth.items():
        report.fates[flow_hash] = FlowFate(flow_hash=flow_hash, truth=truth)

    # Sender-side counts.
    for sender in scenario.tcp_senders:
        fate = report.fates.get(sender.flow.hashed())
        if fate is not None:
            fate.packets_sent = sender.stats.packets_sent
    for sender in scenario.udp_senders:
        fate = report.fates.get(sender.flow.hashed())
        if fate is not None:
            fate.packets_sent = sender.stats.packets_sent
    for zombie in scenario.attack.zombies:
        fate = report.fates.get(zombie.wire_flow.hashed())
        if fate is not None:
            fate.packets_sent = zombie.stats.packets_sent

    # Verdicts (last verdict wins if a flow was re-probed).
    for when, label, verdict, truth in scenario.defense_collector.verdicts:
        fate = report.fates.get(label)
        if fate is None:
            fate = FlowFate(flow_hash=label, truth=truth)
            report.fates[label] = fate
        fate.verdict = verdict
        fate.verdict_time = when

    # Victim arrivals require per-flow accounting from the sinks.
    sink = scenario.tcp_sink
    if sink is not None:
        for flow_hash, next_seq in sink._next_expected.items():
            fate = report.fates.get(flow_hash)
            if fate is not None:
                fate.victim_arrivals = max(fate.victim_arrivals, next_seq)
    return report
