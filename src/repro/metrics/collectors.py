"""Ground-truth metric collectors.

The defence never reads ground truth; these collectors do.  A packet's
``is_attack`` flag and a flow-hash -> :class:`FlowTruth` map (built by
the experiment, which knows which flows it created) classify every
decision the ATRs and the victim sink observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.sim.packet import Packet


class FlowTruth(Enum):
    """Ground-truth class of a flow."""

    ATTACK = "attack"
    TCP_LEGIT = "tcp_legit"  # well-behaved: legitimate AND responsive
    UDP_LEGIT = "udp_legit"  # legitimate but unresponsive (collateral zone)
    UNKNOWN = "unknown"


@dataclass
class _ClassCounts:
    """Per-truth-class examined/dropped/passed counters."""

    examined: int = 0
    dropped: int = 0
    passed: int = 0
    dropped_probe: int = 0
    dropped_pdt: int = 0
    dropped_illegal: int = 0
    dropped_policy: int = 0


class DefenseMetricsCollector:
    """Implements the agent's DefenseObserver protocol with ground truth.

    One collector can serve many ATR agents (counts aggregate across the
    defence line, which is how the paper reports its rates).
    """

    def __init__(self, flow_truth: dict[int, FlowTruth] | None = None) -> None:
        self.flow_truth = flow_truth if flow_truth is not None else {}
        self.counts: dict[FlowTruth, _ClassCounts] = {
            truth: _ClassCounts() for truth in FlowTruth
        }
        self.verdicts: list[tuple[float, int, str, FlowTruth]] = []
        self.first_drop_time: float | None = None

    # ------------------------------------------------- observer interface

    def on_defense_drop(self, packet: Packet, reason: str, now: float) -> None:
        """Record one dropped packet with its ground-truth class."""
        counts = self.counts[self._classify(packet)]
        counts.examined += 1
        counts.dropped += 1
        if reason == "probe":
            counts.dropped_probe += 1
        elif reason == "pdt":
            counts.dropped_pdt += 1
        elif reason == "illegal":
            counts.dropped_illegal += 1
        else:
            counts.dropped_policy += 1
        if self.first_drop_time is None:
            self.first_drop_time = now

    def on_defense_pass(self, packet: Packet, now: float) -> None:
        """Record one passed packet."""
        counts = self.counts[self._classify(packet)]
        counts.examined += 1
        counts.passed += 1

    def on_verdict(self, label, verdict: str, now: float) -> None:
        """Record a table verdict with the flow's ground truth."""
        truth = self.flow_truth.get(int(label), FlowTruth.UNKNOWN)
        self.verdicts.append((now, int(label), verdict, truth))

    # ----------------------------------------------------------- summaries

    def _classify(self, packet: Packet) -> FlowTruth:
        if packet.is_attack:
            return FlowTruth.ATTACK
        return self.flow_truth.get(packet.flow_hash, FlowTruth.UNKNOWN)

    def of(self, truth: FlowTruth) -> _ClassCounts:
        """Counters of one ground-truth class."""
        return self.counts[truth]

    @property
    def total_examined(self) -> int:
        """Packets of every class examined by the defence line."""
        return sum(c.examined for c in self.counts.values())

    @property
    def total_dropped(self) -> int:
        """Packets of every class dropped by the defence line."""
        return sum(c.dropped for c in self.counts.values())

    def verdict_confusion(self) -> dict[tuple[FlowTruth, str], int]:
        """(truth, verdict) -> count over all recorded verdicts."""
        table: dict[tuple[FlowTruth, str], int] = {}
        for _, _, verdict, truth in self.verdicts:
            key = (truth, verdict)
            table[key] = table.get(key, 0) + 1
        return table


class VictimMetricsCollector:
    """Arrival accounting at the victim host.

    Wire its :meth:`on_packet` into the victim sinks.  Keeps raw arrival
    events (time, size, is_attack) so β windows and the Fig. 4b series can
    be computed after the run with any bucketing.
    """

    def __init__(self) -> None:
        self.arrivals: list[tuple[float, int, bool]] = []
        self.attack_packets = 0
        self.legit_packets = 0
        self.defense_activated_at: float | None = None

    def on_packet(self, packet: Packet, now: float) -> None:
        """Record one arrival at the victim."""
        self.arrivals.append((now, packet.size, packet.is_attack))
        if packet.is_attack:
            self.attack_packets += 1
        else:
            self.legit_packets += 1

    def mark_defense_activation(self, now: float) -> None:
        """Stamp the first pushback-start instant (for β and θn windows)."""
        if self.defense_activated_at is None:
            self.defense_activated_at = now

    def arrivals_in(self, start: float, end: float) -> tuple[int, int]:
        """(attack, legit) packet counts with ``start <= t < end``."""
        attack = legit = 0
        for t, _, is_attack in self.arrivals:
            if start <= t < end:
                if is_attack:
                    attack += 1
                else:
                    legit += 1
        return attack, legit

    def bytes_in(self, start: float, end: float) -> int:
        """Total bytes arriving with ``start <= t < end``."""
        return sum(size for t, size, _ in self.arrivals if start <= t < end)

    def rate_bps_in(self, start: float, end: float) -> float:
        """Mean arrival rate in bits/s over [start, end)."""
        if end <= start:
            raise ValueError("end must exceed start")
        return self.bytes_in(start, end) * 8.0 / (end - start)
