"""Ground-truth metric collectors.

The defence never reads ground truth; these collectors do.  A packet's
``is_attack`` flag and a flow-hash -> :class:`FlowTruth` map (built by
the experiment, which knows which flows it created) classify every
decision the ATRs and the victim sink observe.

Both collectors double as event *publishers*: pass an
:class:`~repro.obs.bus.EventBus` and every decision, verdict, arrival,
and activation is emitted onto it in addition to the counter updates.
With no bus attached (the default), the only added cost is one falsy
check per call — the counters and summaries are bit-identical either
way, which the golden-master suite pins.

For bounded-memory runs, :class:`StreamingVictimCollector` replaces the
raw-arrival hoard with a windowed series aggregator plus just enough
recent history for the β windows (see :meth:`beta_rates`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.obs.bus import NULL_BUS, MetricSink
from repro.obs.events import (
    DefenseActivation,
    DefenseDecision,
    Verdict,
    VictimArrival,
)
from repro.sim.packet import Packet


class FlowTruth(Enum):
    """Ground-truth class of a flow."""

    ATTACK = "attack"
    TCP_LEGIT = "tcp_legit"  # well-behaved: legitimate AND responsive
    UDP_LEGIT = "udp_legit"  # legitimate but unresponsive (collateral zone)
    UNKNOWN = "unknown"


@dataclass
class _ClassCounts:
    """Per-truth-class examined/dropped/passed counters."""

    examined: int = 0
    dropped: int = 0
    passed: int = 0
    dropped_probe: int = 0
    dropped_pdt: int = 0
    dropped_illegal: int = 0
    dropped_policy: int = 0


class DefenseMetricsCollector:
    """Implements the agent's DefenseObserver protocol with ground truth.

    One collector can serve many ATR agents (counts aggregate across the
    defence line, which is how the paper reports its rates).
    """

    def __init__(
        self,
        flow_truth: dict[int, FlowTruth] | None = None,
        bus: MetricSink | None = None,
    ) -> None:
        self.flow_truth = flow_truth if flow_truth is not None else {}
        self.bus = bus if bus is not None else NULL_BUS
        self.counts: dict[FlowTruth, _ClassCounts] = {
            truth: _ClassCounts() for truth in FlowTruth
        }
        self.verdicts: list[tuple[float, int, str, FlowTruth]] = []
        self.first_drop_time: float | None = None

    # ------------------------------------------------- observer interface

    def on_defense_drop(
        self, packet: Packet, reason: str, now: float, atr: str = ""
    ) -> None:
        """Record one dropped packet with its ground-truth class."""
        truth = self._classify(packet)
        counts = self.counts[truth]
        counts.examined += 1
        counts.dropped += 1
        if reason == "probe":
            counts.dropped_probe += 1
        elif reason == "pdt":
            counts.dropped_pdt += 1
        elif reason == "illegal":
            counts.dropped_illegal += 1
        else:
            counts.dropped_policy += 1
        if self.first_drop_time is None:
            self.first_drop_time = now
        if self.bus:
            self.bus.emit(DefenseDecision(
                now, "drop", reason, truth.value, packet.flow_hash, atr
            ))

    def on_defense_pass(
        self, packet: Packet, now: float, atr: str = ""
    ) -> None:
        """Record one passed packet."""
        truth = self._classify(packet)
        counts = self.counts[truth]
        counts.examined += 1
        counts.passed += 1
        if self.bus:
            self.bus.emit(DefenseDecision(
                now, "pass", "", truth.value, packet.flow_hash, atr
            ))

    def on_verdict(
        self, label, verdict: str, now: float, atr: str = ""
    ) -> None:
        """Record a table verdict with the flow's ground truth."""
        truth = self.flow_truth.get(int(label), FlowTruth.UNKNOWN)
        self.verdicts.append((now, int(label), verdict, truth))
        if self.bus:
            self.bus.emit(Verdict(
                now, int(label), verdict, truth.value, atr
            ))

    # ----------------------------------------------------------- summaries

    def _classify(self, packet: Packet) -> FlowTruth:
        if packet.is_attack:
            return FlowTruth.ATTACK
        return self.flow_truth.get(packet.flow_hash, FlowTruth.UNKNOWN)

    def of(self, truth: FlowTruth) -> _ClassCounts:
        """Counters of one ground-truth class."""
        return self.counts[truth]

    @property
    def total_examined(self) -> int:
        """Packets of every class examined by the defence line."""
        return sum(c.examined for c in self.counts.values())

    @property
    def total_dropped(self) -> int:
        """Packets of every class dropped by the defence line."""
        return sum(c.dropped for c in self.counts.values())

    def verdict_confusion(self) -> dict[tuple[FlowTruth, str], int]:
        """(truth, verdict) -> count over all recorded verdicts."""
        table: dict[tuple[FlowTruth, str], int] = {}
        for _, _, verdict, truth in self.verdicts:
            key = (truth, verdict)
            table[key] = table.get(key, 0) + 1
        return table


class VictimMetricsCollector:
    """Arrival accounting at the victim host.

    Wire its :meth:`on_packet` into the victim sinks.  Keeps raw arrival
    events (time, size, is_attack) so β windows and the Fig. 4b series can
    be computed after the run with any bucketing.
    """

    def __init__(self, bus: MetricSink | None = None) -> None:
        self.bus = bus if bus is not None else NULL_BUS
        self.arrivals: list[tuple[float, int, bool]] = []
        self.attack_packets = 0
        self.legit_packets = 0
        self.defense_activated_at: float | None = None

    def on_packet(self, packet: Packet, now: float) -> None:
        """Record one arrival at the victim."""
        is_attack = packet.is_attack
        self.arrivals.append((now, packet.size, is_attack))
        if is_attack:
            self.attack_packets += 1
        else:
            self.legit_packets += 1
        if self.bus:
            self.bus.emit(VictimArrival(now, packet.size, is_attack))

    def mark_defense_activation(self, now: float) -> None:
        """Stamp the first pushback-start instant (for β and θn windows)."""
        if self.defense_activated_at is None:
            self.defense_activated_at = now
            if self.bus:
                self.bus.emit(DefenseActivation(now))

    def arrivals_in(self, start: float, end: float) -> tuple[int, int]:
        """(attack, legit) packet counts with ``start <= t < end``."""
        attack = legit = 0
        for t, _, is_attack in self.arrivals:
            if start <= t < end:
                if is_attack:
                    attack += 1
                else:
                    legit += 1
        return attack, legit

    def bytes_in(self, start: float, end: float) -> int:
        """Total bytes arriving with ``start <= t < end``."""
        return sum(size for t, size, _ in self.arrivals if start <= t < end)

    def rate_bps_in(self, start: float, end: float) -> float:
        """Mean arrival rate in bits/s over [start, end)."""
        if end <= start:
            raise ValueError("end must exceed start")
        return self.bytes_in(start, end) * 8.0 / (end - start)

    def beta_rates(
        self, reduction_window: float, pre_window: float
    ) -> tuple[float, float]:
        """(rate_before, rate_after) bits/s around defence activation.

        ``rate_before`` spans the ``pre_window`` ending at activation;
        ``rate_after`` spans one ``reduction_window`` offset a quarter
        window past activation (letting queued packets flush) — the β
        definition documented in :mod:`repro.metrics.rates`.  Returns
        (0.0, 0.0) when the defence never activated.
        """
        t0 = self.defense_activated_at
        if t0 is None:
            return 0.0, 0.0
        w = max(1e-6, reduction_window)
        rate_before = self.rate_bps_in(max(0.0, t0 - pre_window), t0)
        rate_after = self.rate_bps_in(t0 + 0.25 * w, t0 + 1.25 * w)
        return rate_before, rate_after


class StreamingVictimCollector:
    """Bounded-memory drop-in for :class:`VictimMetricsCollector`.

    Instead of hoarding every arrival, it

    * streams arrivals into a
      :class:`~repro.metrics.timeseries.StreamingBandwidthSeries`
      (memory bounded by the bin count),
    * keeps a deque of only the most recent ``pre_window`` seconds of
      arrivals — enough to compute the β *before* window exactly when
      activation strikes — and discards it afterwards, and
    * accumulates the β *after* window as its arrivals stream past.

    Every retained quantity uses the same arithmetic, on the same
    arrival subsequence, as the buffered collector's post-hoc
    computation, so :meth:`beta_rates` and the finished series are
    float-identical to the buffered path (pinned by the identity tests
    and the golden master's streaming parametrization).

    The β windows are fixed at construction; :func:`summarize` must be
    called with the same values (it asserts so via :meth:`beta_rates`).
    """

    def __init__(
        self,
        duration: float,
        series_bin_width: float = 0.05,
        reduction_window: float = 0.12,
        pre_window: float = 0.2,
        bus: MetricSink | None = None,
    ) -> None:
        from repro.metrics.timeseries import StreamingBandwidthSeries

        if pre_window <= 0:
            raise ValueError("pre_window must be positive")
        self.bus = bus if bus is not None else NULL_BUS
        self.series = StreamingBandwidthSeries(
            start=0.0, end=duration, bin_width=series_bin_width
        )
        self.reduction_window = float(reduction_window)
        self.pre_window = float(pre_window)
        self.attack_packets = 0
        self.legit_packets = 0
        self.defense_activated_at: float | None = None
        # (time, size) of arrivals within pre_window of the newest one;
        # cleared the moment activation fixes the before-window rate.
        self._recent: deque[tuple[float, int]] | None = deque()
        self._rate_before = 0.0
        # The after window [t0 + w/4, t0 + 5w/4): bounds set at
        # activation, bytes accumulated as covered arrivals stream by.
        self._after_start = 0.0
        self._after_end = 0.0
        self._after_span = 0.0
        self._after_bytes = 0

    def on_packet(self, packet: Packet, now: float) -> None:
        """Record one arrival (stream it; retain only the β windows)."""
        is_attack = packet.is_attack
        size = packet.size
        if is_attack:
            self.attack_packets += 1
        else:
            self.legit_packets += 1
        self.series.observe(now, size, is_attack)
        recent = self._recent
        if recent is not None:
            recent.append((now, size))
            cutoff = now - self.pre_window
            while recent and recent[0][0] < cutoff:
                recent.popleft()
        elif self._after_start <= now < self._after_end:
            self._after_bytes += size
        if self.bus:
            self.bus.emit(VictimArrival(now, size, is_attack))

    def mark_defense_activation(self, now: float) -> None:
        """Stamp activation; fix the β before-window rate exactly."""
        if self.defense_activated_at is not None:
            return
        self.defense_activated_at = now
        t0 = now
        start = max(0.0, t0 - self.pre_window)
        # Same predicate, operand order, and integer sum as the buffered
        # collector's bytes_in(start, t0) over the full arrival list:
        # arrivals older than `start` were pruned, newer ones filtered.
        total = sum(
            size for t, size in self._recent if start <= t < t0
        )
        self._rate_before = total * 8.0 / (t0 - start)
        self._recent = None  # β before fixed; stop retaining history
        w = max(1e-6, self.reduction_window)
        self._after_start = t0 + 0.25 * w
        self._after_end = t0 + 1.25 * w
        self._after_span = self._after_end - self._after_start
        if self.bus:
            self.bus.emit(DefenseActivation(now))

    def beta_rates(
        self, reduction_window: float, pre_window: float
    ) -> tuple[float, float]:
        """(rate_before, rate_after) — see the buffered counterpart.

        Raises if asked for different windows than it was built to
        stream, since those can no longer be recomputed.
        """
        if self.defense_activated_at is None:
            return 0.0, 0.0
        if (
            reduction_window != self.reduction_window
            or pre_window != self.pre_window
        ):
            raise ValueError(
                "StreamingVictimCollector accumulated "
                f"(reduction_window={self.reduction_window}, "
                f"pre_window={self.pre_window}) but beta_rates asked for "
                f"({reduction_window}, {pre_window}); construct the "
                "collector with the windows summarize will use"
            )
        rate_after = self._after_bytes * 8.0 / self._after_span
        return self._rate_before, rate_after
