"""Control-plane latency model for pushback signalling.

The coordinator logic in :mod:`repro.counting.pushback` decides *what* to
tell each ATR; this module models *when* the message arrives.  The paper's
victim router sends its DDoS notification across the same domain the data
travels, so activation is not instantaneous: each request is delayed by
the shortest-path propagation latency from the victim's last-hop router to
the ATR (plus a fixed processing allowance per hop).

Use :class:`ControlPlane` as the bridge between a
:class:`~repro.counting.pushback.PushbackCoordinator` and the per-ATR
agents::

    plane = ControlPlane(sim, topology.graph, "lasthop", dispatch)
    coordinator = PushbackCoordinator(..., on_request=plane.send)

where ``dispatch(request)`` performs the actual activation.  With
``instant=True`` the plane degrades to a pass-through (the default wiring
of the experiment harness, matching the paper's simulation where the
trigger is modelled as immediate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import networkx as nx

from repro.counting.pushback import PushbackRequest
from repro.util.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


@dataclass
class SignalRecord:
    """One delivered (or dropped) control message, for inspection."""

    request: PushbackRequest
    sent_at: float
    delivered_at: float | None  # None = undeliverable (no path)
    hops: int = 0


class ControlPlane:
    """Delivers pushback requests with topology-derived latency.

    Parameters
    ----------
    sim:
        Simulation clock used to schedule deliveries.
    graph:
        The router graph with ``delay`` edge attributes (the same graph
        the topology builders produce).
    victim_router:
        Name of the router originating the notifications.
    dispatch:
        Callback receiving each request at its delivery time.
    per_hop_processing:
        Fixed processing delay added per hop (router CPU, queueing of
        control traffic); 1 ms default.
    instant:
        When True, requests are dispatched synchronously with zero delay
        (pass-through mode).
    """

    def __init__(
        self,
        sim: "Simulator",
        graph: nx.Graph,
        victim_router: str,
        dispatch: Callable[[PushbackRequest], None],
        per_hop_processing: float = 0.001,
        instant: bool = False,
    ) -> None:
        check_non_negative("per_hop_processing", per_hop_processing)
        self.sim = sim
        self.graph = graph
        self.victim_router = victim_router
        self.dispatch = dispatch
        self.per_hop_processing = float(per_hop_processing)
        self.instant = instant
        self.records: list[SignalRecord] = []
        self._latency_cache: dict[str, tuple[float, int] | None] = {}

    def latency_to(self, atr_name: str) -> tuple[float, int] | None:
        """(propagation delay, hop count) from the victim router, or
        None when unreachable."""
        if atr_name in self._latency_cache:
            return self._latency_cache[atr_name]
        try:
            delay, path = nx.single_source_dijkstra(
                self.graph, self.victim_router, atr_name, weight="delay"
            )
            hops = len(path) - 1
            result: tuple[float, int] | None = (float(delay), hops)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            result = None
        self._latency_cache[atr_name] = result
        return result

    def send(self, request: PushbackRequest) -> None:
        """Dispatch ``request`` after its control-path latency."""
        now = self.sim.now
        if self.instant:
            self.records.append(
                SignalRecord(request=request, sent_at=now, delivered_at=now)
            )
            self.dispatch(request)
            return
        latency = self.latency_to(request.atr_name)
        if latency is None:
            self.records.append(
                SignalRecord(request=request, sent_at=now, delivered_at=None)
            )
            return
        delay, hops = latency
        total = delay + hops * self.per_hop_processing
        record = SignalRecord(
            request=request, sent_at=now, delivered_at=now + total, hops=hops
        )
        self.records.append(record)
        self.sim.schedule(total, self.dispatch, request)

    @property
    def delivered(self) -> list[SignalRecord]:
        """Records of messages that were (or will be) delivered."""
        return [r for r in self.records if r.delivered_at is not None]

    @property
    def undeliverable(self) -> list[SignalRecord]:
        """Records of messages with no control path."""
        return [r for r in self.records if r.delivered_at is None]

    def mean_latency(self) -> float:
        """Mean delivery latency over delivered messages (0 when none)."""
        delivered = self.delivered
        if not delivered:
            return 0.0
        return sum(r.delivered_at - r.sent_at for r in delivered) / len(delivered)
