"""Traffic-matrix estimation by set-union counting.

Implements Section II's estimator over the per-link LogLog sketches:
``a_ij = |Si ∩ Dj| = |Si| + |Dj| - |Si ∪ Dj|``, where ``Si`` is the set of
packets injected at ingress router i and ``Dj`` the set of packets leaving
the core at router j.  Registering one :class:`LogLogLinkCounter` per
ingress uplink and per egress access link gives the estimator everything
it needs; unions are register-wise max-merges, so the computation is
exactly the "distributed max-merge" of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.counting.loglog import LogLogLinkCounter


class TrafficMatrixEstimator:
    """Maintains the registered sketches and computes ``A = {a_ij}``."""

    def __init__(self) -> None:
        self._ingress: dict[str, LogLogLinkCounter] = {}
        self._egress: dict[str, LogLogLinkCounter] = {}

    # -------------------------------------------------------- registration

    def register_ingress(self, counter: LogLogLinkCounter) -> None:
        """Register the sketch of one ingress router's uplink (set Si)."""
        name = counter.router_name
        if name in self._ingress:
            raise ValueError(f"ingress {name} already registered")
        self._ingress[name] = counter

    def register_egress(self, counter: LogLogLinkCounter) -> None:
        """Register the sketch of one egress access link (set Dj)."""
        name = counter.router_name
        if name in self._egress:
            raise ValueError(f"egress {name} already registered")
        self._egress[name] = counter

    @property
    def ingress_names(self) -> list[str]:
        """Registered ingress router names, sorted."""
        return sorted(self._ingress)

    @property
    def egress_names(self) -> list[str]:
        """Registered egress router names, sorted."""
        return sorted(self._egress)

    # ---------------------------------------------------------- estimation

    def ingress_totals(self) -> dict[str, float]:
        """``|Si|`` estimates per ingress router."""
        return {name: c.sketch.estimate() for name, c in self._ingress.items()}

    def egress_totals(self) -> dict[str, float]:
        """``|Dj|`` estimates per egress router."""
        return {name: c.sketch.estimate() for name, c in self._egress.items()}

    def pair_estimate(self, ingress: str, egress: str) -> float:
        """``a_ij`` for one (ingress, egress) pair."""
        si = self._ingress[ingress].sketch
        dj = self._egress[egress].sketch
        return si.intersection_estimate(dj)

    def traffic_matrix(self) -> tuple[list[str], list[str], np.ndarray]:
        """The full estimated matrix with its row/column labels."""
        sources = self.ingress_names
        destinations = self.egress_names
        matrix = np.zeros((len(sources), len(destinations)))
        for i, src in enumerate(sources):
            for j, dst in enumerate(destinations):
                matrix[i, j] = self.pair_estimate(src, dst)
        return sources, destinations, matrix

    def reset(self) -> None:
        """Clear every registered sketch (new epoch)."""
        for counter in self._ingress.values():
            counter.reset()
        for counter in self._egress.values():
            counter.reset()
