"""Victim detection, ATR identification, and pushback signalling.

Closes the loop of Section II: when an epoch's ``|Dj|`` at the victim's
last-hop router is abnormally high, inspect column j of the traffic
matrix and name every ingress i whose contribution ``a_ij`` exceeds a
share threshold an *Attack Transit Router*.  The coordinator then sends a
pushback request to each ATR (activating its MAFIC dropper) and a stop
when the overload clears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.util.validation import check_fraction, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.monitor import MatrixSnapshot


@dataclass(frozen=True)
class PushbackRequest:
    """One pushback command to an ATR."""

    time: float
    atr_name: str
    victim_router: str
    action: str  # "start" | "refresh" | "stop"
    estimated_share: float = 0.0


@dataclass
class AtrReport:
    """Identification outcome for one monitoring epoch."""

    time: float
    victim_router: str
    egress_estimate: float
    threshold: float
    atr_names: list[str] = field(default_factory=list)
    shares: dict[str, float] = field(default_factory=dict)


@dataclass
class PushbackPolicyConfig:
    """Knobs of the detection/identification policy.

    ``overload_factor`` scales the baseline egress estimate into the alarm
    threshold; ``baseline_rate`` seeds the baseline before any calm epoch
    has been observed.  ``share_threshold`` is the minimum fraction of the
    victim's traffic an ingress must contribute to be named an ATR.
    ``min_absolute`` guards against naming ATRs from sketch noise when the
    victim sees almost nothing.
    """

    overload_factor: float = 3.0
    share_threshold: float = 0.05
    baseline_rate: float = 500.0  # packets per epoch considered "calm"
    min_absolute: float = 50.0
    hysteresis_epochs: int = 2  # calm epochs required before "stop"
    warmup_epochs: int = 3  # alarm-free epochs used to learn the baseline
    calm_band: float = 1.5  # baseline updates only when egress <= band*baseline

    def __post_init__(self) -> None:
        check_positive("overload_factor", self.overload_factor)
        check_fraction("share_threshold", self.share_threshold)
        check_positive("baseline_rate", self.baseline_rate)
        if self.hysteresis_epochs < 1:
            raise ValueError("hysteresis_epochs must be >= 1")
        if self.warmup_epochs < 0:
            raise ValueError("warmup_epochs must be >= 0")
        if self.calm_band < 1.0:
            raise ValueError("calm_band must be >= 1")
        if self.calm_band >= self.overload_factor:
            raise ValueError(
                "calm_band must sit below overload_factor, otherwise the "
                "baseline absorbs an incipient attack before it can alarm"
            )


class PushbackCoordinator:
    """Watches matrix snapshots and drives ATR activation.

    Wire ``on_request`` to the control plane (in the full simulation, a
    callback that activates/deactivates the MAFIC agent at the named
    ingress router).  The coordinator keeps an EWMA baseline of the
    victim's calm-time egress volume, raises pushback when the epoch
    estimate exceeds ``overload_factor x baseline``, refreshes ATR sets
    while the attack persists, and stops after ``hysteresis_epochs`` calm
    epochs.
    """

    def __init__(
        self,
        victim_router: str,
        config: PushbackPolicyConfig | None = None,
        on_request: Callable[[PushbackRequest], None] | None = None,
    ) -> None:
        self.victim_router = victim_router
        self.config = config if config is not None else PushbackPolicyConfig()
        self.on_request = on_request
        self.active = False
        self.active_atrs: set[str] = set()
        self.reports: list[AtrReport] = []
        self.requests: list[PushbackRequest] = []
        self._baseline = self.config.baseline_rate
        self._calm_epochs = 0
        self._epochs_seen = 0

    @property
    def baseline(self) -> float:
        """Current calm-traffic baseline (packets/epoch)."""
        return self._baseline

    def on_snapshot(self, snapshot: "MatrixSnapshot") -> None:
        """Process one TrafficMonitor epoch."""
        egress = snapshot.egress_totals.get(self.victim_router)
        if egress is None:
            return
        self._epochs_seen += 1
        if self._epochs_seen <= self.config.warmup_epochs:
            # Warm-up: learn the calm baseline aggressively, never alarm.
            if self._epochs_seen == 1:
                self._baseline = max(egress, 1.0)
            else:
                self._baseline += 0.5 * (egress - self._baseline)
            return
        threshold = max(
            self.config.overload_factor * self._baseline, self.config.min_absolute
        )
        if egress > threshold:
            self._calm_epochs = 0
            report = self._identify(snapshot, egress, threshold)
            self.reports.append(report)
            self._activate(report)
        else:
            # Calm epoch: learn the baseline (guarded against absorbing a
            # ramping attack), maybe stand down.
            if egress <= self.config.calm_band * self._baseline:
                self._baseline += 0.25 * (egress - self._baseline)
            if self.active:
                self._calm_epochs += 1
                if self._calm_epochs >= self.config.hysteresis_epochs:
                    self._deactivate(snapshot.time)

    def _identify(
        self, snapshot: "MatrixSnapshot", egress: float, threshold: float
    ) -> AtrReport:
        report = AtrReport(
            time=snapshot.time,
            victim_router=self.victim_router,
            egress_estimate=egress,
            threshold=threshold,
        )
        if self.victim_router not in snapshot.destinations:
            return report
        col = snapshot.destinations.index(self.victim_router)
        for row, ingress in enumerate(snapshot.sources):
            contribution = float(snapshot.matrix[row, col])
            share = contribution / egress if egress > 0 else 0.0
            report.shares[ingress] = share
            if share >= self.config.share_threshold and contribution >= self.config.min_absolute:
                report.atr_names.append(ingress)
        return report

    def _activate(self, report: AtrReport) -> None:
        newly = set(report.atr_names) - self.active_atrs
        refreshed = set(report.atr_names) & self.active_atrs
        for name in sorted(newly):
            self._send(report.time, name, "start", report.shares.get(name, 0.0))
        for name in sorted(refreshed):
            self._send(report.time, name, "refresh", report.shares.get(name, 0.0))
        self.active_atrs |= newly
        self.active = bool(self.active_atrs)

    def _deactivate(self, time: float) -> None:
        for name in sorted(self.active_atrs):
            self._send(time, name, "stop", 0.0)
        self.active_atrs.clear()
        self.active = False
        self._calm_epochs = 0

    def _send(self, time: float, atr: str, action: str, share: float) -> None:
        request = PushbackRequest(
            time=time,
            atr_name=atr,
            victim_router=self.victim_router,
            action=action,
            estimated_share=share,
        )
        self.requests.append(request)
        if self.on_request is not None:
            self.on_request(request)
