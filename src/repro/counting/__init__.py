"""Set-union counting pushback substrate (paper Section II).

Implements the mechanism of Cai et al. [2] that identifies the Attack
Transit Routers: per-link Durand-Flajolet LogLog sketches of distinct
packets (:mod:`repro.counting.loglog`), the union-transform traffic matrix
``a_ij = |Si| + |Dj| - |Si U Dj|`` (:mod:`repro.counting.setunion`), and
victim detection plus ATR identification with pushback signalling
(:mod:`repro.counting.pushback`).
"""

from repro.counting.loglog import LogLogCounter, LogLogLinkCounter
from repro.counting.pushback import (
    AtrReport,
    PushbackCoordinator,
    PushbackPolicyConfig,
    PushbackRequest,
)
from repro.counting.setunion import TrafficMatrixEstimator
from repro.counting.signaling import ControlPlane, SignalRecord

__all__ = [
    "AtrReport",
    "ControlPlane",
    "LogLogCounter",
    "LogLogLinkCounter",
    "PushbackCoordinator",
    "PushbackPolicyConfig",
    "PushbackRequest",
    "SignalRecord",
    "TrafficMatrixEstimator",
]
