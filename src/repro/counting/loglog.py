"""Durand-Flajolet LogLog cardinality sketches.

The pushback technique of Section II needs, per router, the number of
*distinct* packets injected (``|Si|``) and delivered (``|Dj|``), and the
union cardinality ``|Si U Dj|`` — all in O(log log n) space.  LogLog
provides exactly this: ``m = 2**k`` single-byte registers, each holding
the maximum rank (position of the first 1 bit) seen in its bucket
("stochastic averaging"), with unions computed by register-wise max
("distributed max-merge").

Estimator: ``E = alpha_m * m * 2**(mean of registers)`` with the standard
bias constant ``alpha_m ~= 0.39701`` for m >= 64.  Small cardinalities use
linear counting on the empty-register count to avoid LogLog's small-range
bias.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.packet import PacketType
from repro.util.hashing import stable_hash64

_DATA = PacketType.DATA

# Asymptotic bias-correction constant of the original LogLog paper:
# alpha_inf = (Gamma(-1/m)*(1-2^(1/m))/ln 2)^(-m) -> 0.39701 as m grows.
_ALPHA_INF = 0.39701
_REGISTER_MAX = 64


def _alpha(m: int) -> float:
    """Bias constant; the asymptotic value is accurate for m >= 64."""
    if m >= 64:
        return _ALPHA_INF
    # Low-m corrections (Durand & Flajolet give the general formula; these
    # are the standard tabulated values used in practice).
    return {16: 0.673 / 1.79, 32: 0.697 / 1.79}.get(m, _ALPHA_INF)


class LogLogCounter:
    """One LogLog sketch.

    Parameters
    ----------
    k:
        Number of bucket-index bits; the sketch has ``m = 2**k`` registers.
        The paper's O(log log n) storage claim corresponds to the byte-sized
        registers here.
    salt:
        Mixed into the item hash so independent sketches (e.g. per epoch)
        can decorrelate if desired.  Sketches that must be merged MUST use
        the same salt.
    """

    def __init__(self, k: int = 10, salt: int = 0) -> None:
        if not 4 <= k <= 20:
            raise ValueError("k must be in [4, 20]")
        self.k = int(k)
        self.m = 1 << self.k
        self.salt = int(salt)
        # Registers live in a bytearray: per-item updates index it at
        # C speed (a numpy uint8 scalar read/write costs ~10x as much),
        # while the `registers` property exposes the same data as a
        # writable ndarray view for the vectorized estimate/merge math.
        self._regs = bytearray(self.m)
        self._shift = 64 - self.k
        self._rest_mask = (1 << self._shift) - 1
        self.items_added = 0

    @property
    def registers(self):
        """The register file as a writable uint8 ndarray view."""
        return np.frombuffer(self._regs, dtype=np.uint8)

    @registers.setter
    def registers(self, values) -> None:
        self._regs = bytearray(values)

    def add(self, item: int) -> None:
        """Insert one (hashable-to-int) item."""
        self._add_hashed(stable_hash64(self.salt, int(item)))

    def _add_hashed(self, h: int) -> None:
        """Insert a pre-hashed item (``stable_hash64(salt, item)``)."""
        bucket = h >> self._shift
        rest = h & self._rest_mask
        # Rank = position of first 1 bit in the remaining 64-k bits (1-based).
        width = self._shift
        if rest == 0:
            rank = width + 1
        else:
            rank = width - rest.bit_length() + 1
        regs = self._regs
        if rank > regs[bucket]:
            regs[bucket] = rank if rank < _REGISTER_MAX else _REGISTER_MAX
        self.items_added += 1

    def estimate(self) -> float:
        """Estimated number of distinct items inserted."""
        zeros = int(np.count_nonzero(self.registers == 0))
        if zeros > 0:
            # Linear counting for the small range where LogLog is biased.
            linear = self.m * math.log(self.m / zeros)
            if linear < 2.5 * self.m:
                return linear
        mean_rank = float(self.registers.mean())
        return _alpha(self.m) * self.m * (2.0 ** mean_rank)

    def merge(self, other: "LogLogCounter") -> "LogLogCounter":
        """Register-wise max merge — estimates the union of the two sets."""
        self._check_compatible(other)
        merged = LogLogCounter(self.k, self.salt)
        np.maximum(self.registers, other.registers, out=merged.registers)
        merged.items_added = self.items_added + other.items_added
        return merged

    def union_estimate(self, other: "LogLogCounter") -> float:
        """``|A U B|`` without materializing the merged sketch registers."""
        self._check_compatible(other)
        tmp = LogLogCounter(self.k, self.salt)
        np.maximum(self.registers, other.registers, out=tmp.registers)
        return tmp.estimate()

    def intersection_estimate(self, other: "LogLogCounter") -> float:
        """``|A ∩ B| = |A| + |B| - |A U B|`` — the paper's union transform.

        Clamped at zero: sketch noise can drive the raw value slightly
        negative for disjoint sets.
        """
        raw = self.estimate() + other.estimate() - self.union_estimate(other)
        return max(0.0, raw)

    def reset(self) -> None:
        """Clear all registers (start of a new monitoring epoch)."""
        self.registers.fill(0)
        self.items_added = 0

    def copy(self) -> "LogLogCounter":
        """Deep copy (epoch snapshotting)."""
        dup = LogLogCounter(self.k, self.salt)
        dup.registers = self.registers.copy()
        dup.items_added = self.items_added
        return dup

    def _check_compatible(self, other: "LogLogCounter") -> None:
        if self.k != other.k or self.salt != other.salt:
            raise ValueError("cannot merge sketches with different k or salt")

    @property
    def standard_error(self) -> float:
        """Theoretical relative standard error ~ 1.30 / sqrt(m)."""
        return 1.30 / math.sqrt(self.m)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LogLogCounter(k={self.k}, estimate={self.estimate():.1f})"


class LogLogLinkCounter:
    """The NS-2 ``LogLogCounter`` Connector equivalent: a link-head hook.

    Attached at the head of a SimplexLink, it inserts every forwarded DATA
    packet's uid into its sketch.  Ingress links record the source set
    ``Si``; the victim access link records the destination set ``Dj``.
    """

    def __init__(self, router_name: str, k: int = 10, salt: int = 0) -> None:
        from repro.perf import FLAGS

        self.router_name = router_name
        self.sketch = LogLogCounter(k=k, salt=salt)
        self.packets_seen = 0
        self._memo_items = FLAGS.hot_path_caches

    def on_packet(self, packet, link, now: float) -> bool:
        """Count the packet; never consumes it."""
        if packet.ptype is _DATA:
            sketch = self.sketch
            if sketch.salt == 0 and self._memo_items:
                # Both the ingress and the victim counter hash the same
                # uid with the default salt; memoize the item hash on the
                # packet so the FNV mix runs once per packet, not per hook.
                h = packet._uid_hash
                if h is None:
                    h = stable_hash64(0, packet.uid)
                    packet._uid_hash = h
                sketch._add_hashed(h)
            else:
                sketch.add(packet.uid)
            self.packets_seen += 1
            if packet.ingress_router is None:
                packet.ingress_router = self.router_name
        return True

    def reset(self) -> None:
        """Clear the sketch for the next epoch."""
        self.sketch.reset()
        self.packets_seen = 0
