"""Scenario composition: topology + workload + attack + defence, wired.

:func:`build_scenario` is a thin composer over the four component
registries — :data:`~repro.sim.topology.TOPOLOGIES`,
:data:`~repro.experiments.workload.WORKLOADS`,
:data:`~repro.attacks.scenarios.ATTACKS`, and
:data:`~repro.core.defenses.DEFENSES`.  It looks each component up by
the name in :class:`ExperimentConfig` (forwarding the per-component
``*_args`` dicts as builder keyword arguments), builds them in a fixed
order
(topology, sinks, workload, attack, filtering, counting, defence,
control plane), and wires the invariant substrate: LogLog counters at
every ingress uplink and the victim access link, the TrafficMonitor
driving the PushbackCoordinator, and the coordinator's requests
activating the per-ATR agents.

Adding a scenario family means registering new components from their
home modules — this file does not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.scenarios import ATTACKS, AttackScenario
from repro.core.defenses import DEFENSES, DefenseContext
from repro.core.filters import IngressFilter
from repro.core.mafic import MaficAgent
from repro.counting.loglog import LogLogLinkCounter
from repro.counting.pushback import PushbackCoordinator, PushbackRequest
from repro.counting.setunion import TrafficMatrixEstimator
from repro.counting.signaling import ControlPlane
from repro.experiments.config import ExperimentConfig
from repro.experiments.workload import WORKLOADS, WorkloadContext
from repro.metrics.collectors import (
    DefenseMetricsCollector,
    FlowTruth,
    VictimMetricsCollector,
)
from repro.sim.monitor import TrafficMonitor
from repro.sim.topology import TOPOLOGIES, Topology
from repro.sim.trace import EventTrace
from repro.transport.sink import AckingSink, CountingSink
from repro.transport.tcp import TcpSender
from repro.transport.udp import CbrSender
from repro.util.rng import RngRegistry


@dataclass
class BuiltScenario:
    """Everything :func:`run_experiment` needs, assembled."""

    config: ExperimentConfig
    topology: Topology
    tcp_senders: list[TcpSender]
    udp_senders: list[CbrSender]
    attack: AttackScenario
    agents: dict[str, MaficAgent]
    estimator: TrafficMatrixEstimator
    monitor: TrafficMonitor
    coordinator: PushbackCoordinator
    defense_collector: DefenseMetricsCollector
    victim_collector: VictimMetricsCollector
    trace: EventTrace
    flow_truth: dict[int, FlowTruth] = field(default_factory=dict)
    tcp_sink: AckingSink | None = None
    udp_sink: CountingSink | None = None
    control_plane: ControlPlane | None = None
    ingress_filters: dict[str, IngressFilter] = field(default_factory=dict)
    # Workload attachments (e.g. the web-mice DynamicWorkload) land here.
    mice: object | None = None
    # The observability bus every layer publishes into (None = batch
    # mode, zero overhead — see repro.obs).
    bus: object | None = None

    @property
    def sim(self):
        """The underlying simulator clock."""
        return self.topology.sim


def build_scenario(
    config: ExperimentConfig,
    bus=None,
    victim_collector=None,
) -> BuiltScenario:
    """Assemble a full scenario from one config (does not run it).

    ``bus`` (an :class:`~repro.obs.bus.EventBus`) threads streaming
    observability through every layer: the collectors, the monitor, and
    the victim-side links all publish onto it.  ``victim_collector``
    overrides the arrival accountant — :func:`run_experiment` passes a
    :class:`~repro.metrics.collectors.StreamingVictimCollector` here in
    streaming-series mode.  Both default to off, which is the bit-exact
    zero-overhead batch path.
    """
    rngs = RngRegistry(config.seed)
    topology = TOPOLOGIES.get(config.topology)(config, **config.topology_args)
    sim = topology.sim
    trace = EventTrace(
        enabled=config.trace_enabled, max_records=config.trace_max_records
    )
    if victim_collector is None:
        victim_collector = VictimMetricsCollector(bus=bus)

    # ------------------------------------------------------------- sinks
    victim_host = topology.victim_host
    tcp_sink = AckingSink(sim, victim_host, on_packet=victim_collector.on_packet)
    udp_sink = CountingSink(sim, on_packet=victim_collector.on_packet)
    victim_host.bind_port(config.victim_port, tcp_sink)
    victim_host.bind_port(config.udp_port, udp_sink)

    # ---------------------------------------------------- legitimate flows
    workload = WORKLOADS.get(config.workload)(
        WorkloadContext(topology=topology, config=config, rngs=rngs),
        **config.workload_args,
    )
    flow_truth: dict[int, FlowTruth] = dict(workload.flow_truth)

    # -------------------------------------------------------------- attack
    attack = ATTACKS.get(config.attack)(
        topology, config, rngs.stream("attack"), **config.attack_args
    )
    attack.schedule()
    for flow_hash in attack.attack_flow_hashes():
        flow_truth[flow_hash] = FlowTruth.ATTACK

    # ------------------------------------------------- ingress filtering
    ingress_filters: dict[str, IngressFilter] = {}
    if config.ingress_filtering:
        for name in topology.ingress_names:
            subnet = topology.subnet_of_router[name]
            ingress_filter = IngressFilter([subnet])
            topology.ingress_uplink(name).add_head_hook(ingress_filter)
            ingress_filters[name] = ingress_filter

    # ------------------------------------------------ counting substrate
    estimator = TrafficMatrixEstimator()
    for name in topology.ingress_names:
        counter = LogLogLinkCounter(name, k=config.loglog_k)
        topology.ingress_uplink(name).add_head_hook(counter)
        estimator.register_ingress(counter)
    victim_counter = LogLogLinkCounter(
        topology.victim_router_name, k=config.loglog_k
    )
    topology.victim_access_link().add_head_hook(victim_counter)
    estimator.register_egress(victim_counter)

    # ------------------------------------------------------------ defence
    defense_collector = DefenseMetricsCollector(flow_truth, bus=bus)
    agents = DEFENSES.get(config.defense)(
        DefenseContext(
            topology=topology,
            config=config,
            rngs=rngs,
            collector=defense_collector,
            trace=trace,
        ),
        **config.defense_args,
    )

    # ------------------------------------------------- detection control
    def dispatch_request(request: PushbackRequest) -> None:
        agent = agents.get(request.atr_name)
        if agent is None:
            return
        now = sim.now
        if request.action == "start":
            agent.activate(now)
            victim_collector.mark_defense_activation(now)
        elif request.action == "refresh":
            agent.refresh(now)
        elif request.action == "stop":
            agent.deactivate(now)

    control_plane = ControlPlane(
        sim,
        topology.graph,
        topology.victim_router_name,
        dispatch_request,
        per_hop_processing=config.control_per_hop_processing,
        instant=not config.control_latency,
    )

    coordinator = PushbackCoordinator(
        victim_router=topology.victim_router_name,
        config=config.pushback,
        on_request=control_plane.send,
    )
    monitor = TrafficMonitor(
        sim,
        estimator,
        period=config.monitor_period,
        on_snapshot=coordinator.on_snapshot,
        bus=bus,
    )
    monitor.start()

    if bus:
        # Link-level drop visibility where it matters: the victim's
        # access link (congestion collapse) and every defended ingress.
        topology.victim_access_link().bus = bus
        for name in topology.ingress_names:
            topology.ingress_uplink(name).bus = bus

    if config.force_activation_at is not None and agents:
        # Model the victim's explicit DDoS notification: every ATR starts
        # at a fixed time regardless of the threshold detector.
        def _force_activation() -> None:
            now = sim.now
            victim_collector.mark_defense_activation(now)
            for agent in agents.values():
                agent.activate(now)

        sim.schedule_at(config.force_activation_at, _force_activation)

    scenario = BuiltScenario(
        config=config,
        topology=topology,
        tcp_senders=workload.tcp_senders,
        udp_senders=workload.udp_senders,
        attack=attack,
        agents=agents,
        estimator=estimator,
        monitor=monitor,
        coordinator=coordinator,
        defense_collector=defense_collector,
        victim_collector=victim_collector,
        trace=trace,
        flow_truth=flow_truth,
        tcp_sink=tcp_sink,
        udp_sink=udp_sink,
        control_plane=control_plane,
        ingress_filters=ingress_filters,
        bus=bus,
    )
    if workload.finalize is not None:
        workload.finalize(scenario)
    return scenario
