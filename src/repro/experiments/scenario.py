"""Scenario construction: topology + flows + counting + defence, wired.

:func:`build_scenario` turns an :class:`ExperimentConfig` into a
ready-to-run :class:`BuiltScenario`: the domain is built, legitimate TCP
and UDP flows and zombies are placed round-robin over the ingress
subnets, LogLog counters sit at every ingress uplink and the victim
access link, the TrafficMonitor drives the PushbackCoordinator, and the
coordinator's requests activate the per-ATR defence agents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.attacks.scenarios import AttackScenario, AttackScenarioConfig
from repro.attacks.zombie import ZombieConfig
from repro.core.config import MaficConfig
from repro.core.filters import IngressFilter
from repro.core.mafic import MaficAgent
from repro.core.policy import (
    AggregateRateLimitPolicy,
    DropPolicy,
    ProportionalDropPolicy,
)
from repro.counting.loglog import LogLogLinkCounter
from repro.counting.pushback import PushbackCoordinator, PushbackRequest
from repro.counting.setunion import TrafficMatrixEstimator
from repro.counting.signaling import ControlPlane
from repro.experiments.config import DefenseKind, ExperimentConfig, TopologyKind
from repro.metrics.collectors import (
    DefenseMetricsCollector,
    FlowTruth,
    VictimMetricsCollector,
)
from repro.sim.monitor import TrafficMonitor
from repro.sim.packet import FlowKey
from repro.sim.topology import (
    Topology,
    build_star_domain,
    build_transit_stub_domain,
    build_tree_domain,
)
from repro.sim.trace import EventTrace
from repro.transport.sink import AckingSink, CountingSink
from repro.transport.tcp import TcpSender
from repro.transport.udp import CbrSender
from repro.util.rng import RngRegistry


@dataclass
class BuiltScenario:
    """Everything :func:`run_experiment` needs, assembled."""

    config: ExperimentConfig
    topology: Topology
    tcp_senders: list[TcpSender]
    udp_senders: list[CbrSender]
    attack: AttackScenario
    agents: dict[str, MaficAgent]
    estimator: TrafficMatrixEstimator
    monitor: TrafficMonitor
    coordinator: PushbackCoordinator
    defense_collector: DefenseMetricsCollector
    victim_collector: VictimMetricsCollector
    trace: EventTrace
    flow_truth: dict[int, FlowTruth] = field(default_factory=dict)
    tcp_sink: AckingSink | None = None
    udp_sink: CountingSink | None = None
    control_plane: ControlPlane | None = None
    ingress_filters: dict[str, IngressFilter] = field(default_factory=dict)

    @property
    def sim(self):
        """The underlying simulator clock."""
        return self.topology.sim


def _build_topology(config: ExperimentConfig) -> Topology:
    common = dict(
        core_bandwidth_bps=config.core_bandwidth_bps,
        access_bandwidth_bps=config.access_bandwidth_bps,
        victim_bandwidth_bps=config.victim_bandwidth_bps,
        link_delay=config.link_delay,
        queue_capacity=config.queue_capacity,
    )
    if config.topology is TopologyKind.STAR:
        return build_star_domain(n_ingress=max(1, config.n_routers - 1), **common)
    if config.topology is TopologyKind.TREE:
        # Pick fanout 3 and the depth that reaches roughly n_routers.
        fanout = 3
        depth = max(1, round(math.log(max(3, config.n_routers), fanout)) - 0)
        return build_tree_domain(depth=min(3, depth), fanout=fanout, **common)
    return build_transit_stub_domain(n_routers=config.n_routers, **common)


def _make_policy(config: ExperimentConfig, rng) -> DropPolicy | None:
    """Policy override for baseline defences (None = MAFIC's own)."""
    if config.defense is DefenseKind.PROPORTIONAL:
        return ProportionalDropPolicy(config.mafic.drop_probability, rng)
    if config.defense is DefenseKind.RATE_LIMIT:
        return AggregateRateLimitPolicy(config.rate_limit_bps)
    return None


def build_scenario(config: ExperimentConfig) -> BuiltScenario:
    """Assemble a full scenario from one config (does not run it)."""
    rngs = RngRegistry(config.seed)
    topology = _build_topology(config)
    sim = topology.sim
    trace = EventTrace(
        enabled=config.trace_enabled, max_records=config.trace_max_records
    )
    victim_collector = VictimMetricsCollector()

    # ------------------------------------------------------------- sinks
    victim_host = topology.victim_host
    tcp_sink = AckingSink(sim, victim_host, on_packet=victim_collector.on_packet)
    udp_sink = CountingSink(sim, on_packet=victim_collector.on_packet)
    victim_host.bind_port(config.victim_port, tcp_sink)
    victim_host.bind_port(config.udp_port, udp_sink)

    # ---------------------------------------------------- legitimate flows
    flow_truth: dict[int, FlowTruth] = {}
    tcp_senders: list[TcpSender] = []
    udp_senders: list[CbrSender] = []
    src_hosts = [
        topology.hosts[f"src{i}"] for i in range(len(topology.ingress_names))
    ]
    start_rng = rngs.stream("legit", "starts")
    next_port: dict[str, int] = {}

    for i in range(config.n_tcp):
        host = src_hosts[i % len(src_hosts)]
        port = next_port.get(host.name, 1024)
        next_port[host.name] = port + 1
        flow = FlowKey(host.address, victim_host.address, port, config.victim_port)
        sender = TcpSender(
            sim,
            host,
            flow,
            packet_size=config.packet_size,
            ssthresh=config.tcp_max_cwnd,
            max_cwnd=config.tcp_max_cwnd,
        )
        host.bind_port(port, sender)
        start = float(start_rng.random()) * config.legit_start_spread
        sender.start(at=start)
        tcp_senders.append(sender)
        flow_truth[flow.hashed()] = FlowTruth.TCP_LEGIT

    for i in range(config.n_udp_legit):
        host = src_hosts[(config.n_tcp + i) % len(src_hosts)]
        port = next_port.get(host.name, 1024)
        next_port[host.name] = port + 1
        flow = FlowKey(host.address, victim_host.address, port, config.udp_port)
        sender = CbrSender(
            sim,
            host,
            flow,
            rate_bps=config.legit_rate_bps,
            packet_size=config.packet_size,
            is_attack=False,
            jitter=0.05,
            rng=rngs.stream("legit", "udp", i),
        )
        host.bind_port(port, sender)
        start = float(start_rng.random()) * config.legit_start_spread
        sender.start(at=start)
        udp_senders.append(sender)
        flow_truth[flow.hashed()] = FlowTruth.UDP_LEGIT

    # -------------------------------------------------------------- attack
    attack = AttackScenario(
        topology,
        AttackScenarioConfig(
            n_zombies=config.n_zombies,
            zombie=ZombieConfig(
                rate_bps=config.rate_bps,
                packet_size=config.packet_size,
                spoofing=config.spoofing,
                pulsing=config.pulsing_attack,
                mean_on=config.pulse_on,
                mean_off=config.pulse_off,
            ),
            start_time=config.attack_start,
        ),
        victim_port=config.victim_port,
        rng=rngs.stream("attack"),
    )
    attack.schedule()
    for flow_hash in attack.attack_flow_hashes():
        flow_truth[flow_hash] = FlowTruth.ATTACK

    # ------------------------------------------------- ingress filtering
    ingress_filters: dict[str, IngressFilter] = {}
    if config.ingress_filtering:
        for name in topology.ingress_names:
            subnet = topology.subnet_of_router[name]
            ingress_filter = IngressFilter([subnet])
            topology.ingress_uplink(name).add_head_hook(ingress_filter)
            ingress_filters[name] = ingress_filter

    # ------------------------------------------------ counting substrate
    estimator = TrafficMatrixEstimator()
    for name in topology.ingress_names:
        counter = LogLogLinkCounter(name, k=config.loglog_k)
        topology.ingress_uplink(name).add_head_hook(counter)
        estimator.register_ingress(counter)
    victim_counter = LogLogLinkCounter(
        topology.victim_router_name, k=config.loglog_k
    )
    topology.victim_access_link().add_head_hook(victim_counter)
    estimator.register_egress(victim_counter)

    # ------------------------------------------------------------ defence
    defense_collector = DefenseMetricsCollector(flow_truth)
    agents: dict[str, MaficAgent] = {}
    if config.defense is not DefenseKind.NONE:
        victim_subnet = topology.subnet_of_router[topology.victim_router_name]
        for name in topology.ingress_names:
            router = topology.routers[name]
            agent_rng = rngs.stream("mafic", name)
            agent = MaficAgent(
                sim,
                router,
                victim_matcher=victim_subnet.contains,
                config=config.mafic,
                rng=agent_rng,
                address_space=topology.address_space,
                policy=_make_policy(config, agent_rng),
                observer=defense_collector,
                trace=trace,
            )
            if config.defense is not DefenseKind.MAFIC:
                # Baselines drop blindly; the PDT legality shortcut and
                # probing belong to MAFIC alone.
                agent.config = MaficConfig(
                    drop_probability=config.mafic.drop_probability,
                    drop_illegal_sources=False,
                )
            # Counting first (arrival view), then the dropper.
            topology.ingress_uplink(name).add_head_hook(agent)
            agents[name] = agent

    # ------------------------------------------------- detection control
    def dispatch_request(request: PushbackRequest) -> None:
        agent = agents.get(request.atr_name)
        if agent is None:
            return
        now = sim.now
        if request.action == "start":
            agent.activate(now)
            victim_collector.mark_defense_activation(now)
        elif request.action == "refresh":
            agent.refresh(now)
        elif request.action == "stop":
            agent.deactivate(now)

    control_plane = ControlPlane(
        sim,
        topology.graph,
        topology.victim_router_name,
        dispatch_request,
        per_hop_processing=config.control_per_hop_processing,
        instant=not config.control_latency,
    )

    coordinator = PushbackCoordinator(
        victim_router=topology.victim_router_name,
        config=config.pushback,
        on_request=control_plane.send,
    )
    monitor = TrafficMonitor(
        sim,
        estimator,
        period=config.monitor_period,
        on_snapshot=coordinator.on_snapshot,
    )
    monitor.start()

    if config.force_activation_at is not None and agents:
        # Model the victim's explicit DDoS notification: every ATR starts
        # at a fixed time regardless of the threshold detector.
        def _force_activation() -> None:
            now = sim.now
            victim_collector.mark_defense_activation(now)
            for agent in agents.values():
                agent.activate(now)

        sim.schedule_at(config.force_activation_at, _force_activation)

    return BuiltScenario(
        config=config,
        topology=topology,
        tcp_senders=tcp_senders,
        udp_senders=udp_senders,
        attack=attack,
        agents=agents,
        estimator=estimator,
        monitor=monitor,
        coordinator=coordinator,
        defense_collector=defense_collector,
        victim_collector=victim_collector,
        trace=trace,
        flow_truth=flow_truth,
        tcp_sink=tcp_sink,
        udp_sink=udp_sink,
        control_plane=control_plane,
        ingress_filters=ingress_filters,
    )
