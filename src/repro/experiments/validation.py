"""Scenario feasibility checks.

The threshold detector only fires when the flood stands out against the
legitimate baseline; several axes of the paper's sweeps (very low attack
rates, very fast legitimate TCP in small domains) can silently put a
configuration below detection sensitivity, producing all-zero metrics
that look like a broken defence.  :func:`validate_config` estimates the
attack-to-baseline ratio up front and reports actionable findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.experiments.config import DefenseKind, ExperimentConfig


class Severity(Enum):
    """How bad a finding is."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass
class Finding:
    """One validation finding."""

    severity: Severity
    code: str
    message: str


@dataclass
class ValidationReport:
    """All findings for one config."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing rose above WARNING."""
        return all(f.severity is not Severity.ERROR for f in self.findings)

    def has(self, code: str) -> bool:
        """Whether a finding with this code is present."""
        return any(f.code == code for f in self.findings)

    def __iter__(self):
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)


def _estimate_path_rtt(config: ExperimentConfig) -> float:
    """Rough victim<->source RTT for the configured topology."""
    # host links (1 ms each side) + the hop count each registered
    # topology declares about itself (``hops_one_way`` registry meta).
    from repro.sim.topology import TOPOLOGIES

    hops_one_way = TOPOLOGIES.spec(config.topology).meta.get("hops_one_way", 4)
    one_way = 0.002 + hops_one_way * config.link_delay
    return 2 * one_way


def validate_config(config: ExperimentConfig) -> ValidationReport:
    """Check a configuration for feasibility pitfalls."""
    report = ValidationReport()

    # --- Detection sensitivity ------------------------------------------
    rtt = _estimate_path_rtt(config)
    tcp_rate_pps = config.tcp_max_cwnd / max(1e-6, rtt)
    udp_rate_pps = config.legit_rate_bps / (config.packet_size * 8)
    attack_rate_pps = config.rate_bps / (config.packet_size * 8)
    legit_pps = config.n_tcp * tcp_rate_pps + config.n_udp_legit * udp_rate_pps
    attack_pps = config.n_zombies * attack_rate_pps
    if legit_pps > 0:
        ratio = (legit_pps + attack_pps) / legit_pps
        needed = config.pushback.overload_factor
        if config.force_activation_at is None and config.defense is not DefenseKind.NONE:
            if ratio < needed:
                report.findings.append(Finding(
                    Severity.ERROR,
                    "detection-infeasible",
                    f"estimated flood-to-baseline ratio {ratio:.2f} is below "
                    f"the overload factor {needed:.2f}: the detector will "
                    "never fire.  Raise attack_fraction/rate_bps, lower the "
                    "overload factor, or set force_activation_at.",
                ))
            elif ratio < 1.15 * needed:
                report.findings.append(Finding(
                    Severity.WARNING,
                    "detection-marginal",
                    f"estimated flood-to-baseline ratio {ratio:.2f} barely "
                    f"clears the overload factor {needed:.2f}; detection "
                    "may be seed-dependent.",
                ))

    # --- Warm-up vs attack start ----------------------------------------
    warmup_ends = config.pushback.warmup_epochs * config.monitor_period
    if config.attack_start < warmup_ends and config.force_activation_at is None:
        report.findings.append(Finding(
            Severity.WARNING,
            "attack-during-warmup",
            f"the attack starts at {config.attack_start:.2f}s, inside the "
            f"detector's warm-up (ends {warmup_ends:.2f}s): the baseline "
            "will absorb part of the flood.",
        ))

    # --- Probe window vs run length ---------------------------------------
    window = config.mafic.probe_window(None)
    active = config.duration - (config.attack_start + config.monitor_period)
    if active <= 2 * window:
        report.findings.append(Finding(
            Severity.WARNING,
            "short-active-period",
            f"the defence-active period (~{active:.2f}s) is under two probe "
            f"windows ({window:.2f}s each): Lr and theta_n will be "
            "dominated by the probing transient.",
        ))

    # --- Probe window vs path RTT ----------------------------------------
    if config.mafic.default_rtt < rtt * 0.75:
        report.findings.append(Finding(
            Severity.WARNING,
            "probe-window-below-rtt",
            f"MaficConfig.default_rtt ({config.mafic.default_rtt:.3f}s) is "
            f"well below the estimated path RTT ({rtt:.3f}s): conforming "
            "TCP may be judged before its in-flight pipeline drains.",
        ))

    # --- Informational ----------------------------------------------------
    report.findings.append(Finding(
        Severity.INFO,
        "load-estimate",
        f"estimated steady load: legit {legit_pps:.0f} pps + attack "
        f"{attack_pps:.0f} pps across {len(range(config.n_zombies))} zombies.",
    ))
    return report
