"""Experiment harness: Table-II defaults, scenario construction, runs,
sweeps, and the per-figure reproduction entry points.

Quick use::

    from repro.experiments import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(seed=7))
    print(result.summary.as_percent())

Each paper figure has a function in :mod:`repro.experiments.figures`
returning a :class:`~repro.experiments.figures.FigureResult` whose series
mirror the published plot.
"""

from repro.attacks.scenarios import ATTACKS
from repro.core.defenses import DEFENSES, DefenseContext
from repro.experiments.config import DefenseKind, ExperimentConfig, TopologyKind
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenario import BuiltScenario, build_scenario
from repro.sim.topology import TOPOLOGIES
from repro.util.registry import Registry, UnknownComponentError
from repro.experiments.parallel import (
    BatchResult,
    ResultCache,
    run_batch,
    run_seeds_parallel,
    seed_configs,
)
from repro.experiments.sweeps import SweepResult, sweep
from repro.experiments.figures import (
    FigureResult,
    fig3a,
    fig3b,
    fig4a,
    fig4b,
    fig5a,
    fig5b,
    fig5c,
    fig6a,
    fig6b,
    fig6c,
    fig7,
)
from repro.experiments.presets import PRESETS, get_preset
from repro.experiments.reporting import format_figure, format_summary
from repro.experiments.validation import (
    Finding,
    Severity,
    ValidationReport,
    validate_config,
)
from repro.experiments.workload import (
    WORKLOADS,
    DynamicWorkload,
    DynamicWorkloadConfig,
    TransferRecord,
    WorkloadBuild,
    WorkloadContext,
)

__all__ = [
    "ATTACKS",
    "DEFENSES",
    "TOPOLOGIES",
    "WORKLOADS",
    "BatchResult",
    "BuiltScenario",
    "DefenseContext",
    "DefenseKind",
    "ExperimentConfig",
    "ExperimentResult",
    "FigureResult",
    "Registry",
    "ResultCache",
    "SweepResult",
    "TopologyKind",
    "UnknownComponentError",
    "WorkloadBuild",
    "WorkloadContext",
    "build_scenario",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "DynamicWorkload",
    "DynamicWorkloadConfig",
    "Finding",
    "PRESETS",
    "Severity",
    "TransferRecord",
    "ValidationReport",
    "format_figure",
    "format_summary",
    "get_preset",
    "run_batch",
    "run_experiment",
    "run_seeds_parallel",
    "seed_configs",
    "sweep",
    "validate_config",
]
