"""Parameter sweeps over :func:`run_experiment`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment


@dataclass
class SweepPoint:
    """One (x, result) pair of a sweep."""

    x: float
    result: ExperimentResult


@dataclass
class SweepResult:
    """A named series of sweep points."""

    name: str
    x_values: list[float]
    points: list[SweepPoint] = field(default_factory=list)

    def ys(self, metric: Callable[[ExperimentResult], float]) -> list[float]:
        """Extract one metric across the sweep."""
        return [metric(point.result) for point in self.points]

    def pairs(self, metric: Callable[[ExperimentResult], float]) -> list[tuple[float, float]]:
        """(x, metric) pairs."""
        return [(point.x, metric(point.result)) for point in self.points]


def sweep(
    base: ExperimentConfig,
    x_values: list[float],
    apply: Callable[[ExperimentConfig, float], ExperimentConfig],
    name: str = "sweep",
    seeds_per_point: int = 1,
    reduce: Callable[[list[ExperimentResult]], ExperimentResult] | None = None,
    jobs: int | None = None,
    cache=None,
) -> SweepResult:
    """Run ``base`` once per x value (optionally averaging over seeds).

    ``apply(config, x)`` returns the config for that x.  With
    ``seeds_per_point > 1`` each point runs several seeds and ``reduce``
    picks the representative result (default: the first); metric
    averaging across seeds is the caller's job via :meth:`SweepResult.ys`
    on individual sweeps if needed — keeping this simple and explicit.

    ``jobs`` fans the (x, seed) grid out to worker processes via
    :func:`repro.experiments.parallel.run_batch`; every run is seeded
    independently, so the parallel sweep reproduces the serial per-run
    summaries bit-for-bit.  Parallel results are detached, though —
    ``result.scenario`` is ``None`` (the live object graph cannot cross
    the process boundary), so a ``reduce`` hook must not rely on it when
    ``jobs > 1``.  ``jobs=None`` or ``1`` keeps the classic serial loop.

    ``cache`` makes the sweep store-aware (see
    :func:`repro.experiments.parallel.run_batch`): pass
    ``CampaignStore.as_cache()`` and points whose configs already have
    artifacts load from disk instead of re-running — repeating a sweep
    is then free, and interrupted sweeps resume.  A cache implies the
    batched path even for ``jobs=1`` (results are detached).
    """
    if not x_values:
        raise ValueError("x_values must be non-empty")
    if seeds_per_point < 1:
        raise ValueError("seeds_per_point must be >= 1")
    result = SweepResult(name=name, x_values=list(x_values))

    if cache is not None or (jobs is not None and jobs > 1):
        from repro.experiments.parallel import run_batch

        grid = []
        for x in x_values:
            config = apply(base, x)
            grid.extend(
                config.with_overrides(seed=config.seed + offset)
                for offset in range(seeds_per_point)
            )
        batch = run_batch(grid, jobs=jobs if jobs is not None else 1, cache=cache)
        for i, x in enumerate(x_values):
            runs = batch.results[i * seeds_per_point : (i + 1) * seeds_per_point]
            chosen = reduce(runs) if reduce is not None else runs[0]
            result.points.append(SweepPoint(x=float(x), result=chosen))
        return result

    for x in x_values:
        config = apply(base, x)
        runs = [
            run_experiment(config.with_overrides(seed=config.seed + offset))
            for offset in range(seeds_per_point)
        ]
        chosen = reduce(runs) if reduce is not None else runs[0]
        result.points.append(SweepPoint(x=float(x), result=chosen))
    return result


def mean_of(metric: Callable[[ExperimentResult], float]) -> Callable[[list[ExperimentResult]], float]:
    """Helper: average a metric across multi-seed runs."""

    def fold(runs: list[ExperimentResult]) -> float:
        values = [metric(run) for run in runs]
        return sum(values) / len(values)

    return fold
