"""Parallel experiment execution: fan seeds/sweep points out to workers.

MAFIC's evaluation is built from repeated stochastic runs — multi-seed
confidence intervals and parameter sweeps — which are embarrassingly
parallel: every run is fully determined by its :class:`ExperimentConfig`
(the seed drives every random stream) and shares no state with its
neighbours.  :func:`run_batch` executes a list of configs either serially
in-process or across a :class:`~concurrent.futures.ProcessPoolExecutor`,
and **both paths produce bit-identical per-run summaries**: workers call
the exact same :func:`~repro.experiments.runner.run_experiment` the
serial path does.

Workers return :meth:`~repro.experiments.runner.ExperimentResult.detached`
results (summary, series, counters — everything except the live
simulation object graph, which cannot cross a process boundary) plus a
per-chunk :class:`~repro.util.stats.RunningStats` partial for each
headline metric; the parent folds the partials with
:meth:`RunningStats.merge`, so metric aggregation never re-walks the
per-run data.

Quick use::

    from repro.experiments.parallel import run_batch, seed_configs

    batch = run_batch(seed_configs(config, [1, 2, 3, 4]), jobs=4)
    print(batch.stats["accuracy"].mean)
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.util.stats import RunningStats

class ResultCache(Protocol):
    """What :func:`run_batch`'s ``cache`` argument must provide.

    :meth:`repro.campaign.store.CampaignStore.as_cache` is the canonical
    implementation; any get/put pair with these shapes works.
    """

    def get(self, config: ExperimentConfig) -> ExperimentResult | None:
        """The stored result for ``config``, or None to run it."""
        ...

    def put(self, result: ExperimentResult) -> None:
        """Persist a freshly computed result."""
        ...

#: MetricsSummary fields folded into per-chunk partials (the paper's five
#: headline rates).
METRIC_NAMES: tuple[str, ...] = (
    "accuracy",
    "traffic_reduction",
    "false_positive_rate",
    "false_negative_rate",
    "legit_drop_rate",
)


@dataclass
class _ChunkOutput:
    """What one worker chunk sends back (everything picklable)."""

    index: int
    results: list[ExperimentResult]
    partials: dict[str, RunningStats]
    wall_seconds: float


@dataclass
class BatchResult:
    """All runs of one batch, in input order, plus merged metric stats."""

    results: list[ExperimentResult]
    stats: dict[str, RunningStats] = field(default_factory=dict)
    jobs: int = 1
    chunks: int = 1
    wall_seconds: float = 0.0

    @property
    def summaries(self):
        """The per-run :class:`MetricsSummary` objects, in input order."""
        return [run.summary for run in self.results]

    def ys(self, metric: Callable[[ExperimentResult], float]) -> list[float]:
        """Extract one metric across the batch."""
        return [metric(run) for run in self.results]


def default_jobs() -> int:
    """Worker count when the caller doesn't choose: one per CPU."""
    return max(1, os.cpu_count() or 1)


def seed_configs(
    config: ExperimentConfig, seeds: Iterable[int]
) -> list[ExperimentConfig]:
    """One config per seed — the multi-seed confidence batch."""
    return [config.with_overrides(seed=int(seed)) for seed in seeds]


def _run_chunk(
    index: int, configs: list[ExperimentConfig], series_bin_width: float
) -> _ChunkOutput:
    """Worker entry: run a contiguous slice of the batch.

    Must stay a module-level function so the executor can pickle it.
    """
    started = time.perf_counter()
    partials = {name: RunningStats() for name in METRIC_NAMES}
    results = []
    for config in configs:
        result = run_experiment(config, series_bin_width=series_bin_width)
        for name, stats in partials.items():
            stats.update(getattr(result.summary, name))
        results.append(result.detached())
    return _ChunkOutput(
        index=index,
        results=results,
        partials=partials,
        wall_seconds=time.perf_counter() - started,
    )


def _worker_init() -> None:
    """Leave SIGINT handling to the parent.

    A terminal Ctrl-C delivers SIGINT to the whole foreground process
    group; without this, every worker dies mid-run with its own
    KeyboardInterrupt traceback while the parent is trying to shut the
    pool down cleanly.  Ignoring it in workers makes the parent the
    single interruption point — it cancels undispatched chunks and lets
    in-flight ones finish, so no artifact is ever half-written.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _chunk_slices(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into up to ``n_chunks`` contiguous slices."""
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    slices = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def run_batch(
    configs: Sequence[ExperimentConfig],
    jobs: int | None = None,
    series_bin_width: float = 0.05,
    chunks_per_job: int = 2,
    cache: "ResultCache | None" = None,
) -> BatchResult:
    """Run every config and fold the headline metrics.

    ``jobs`` is the worker-process count (default: CPU count); ``jobs=1``
    runs serially in-process with no executor.  ``chunks_per_job``
    controls load balancing: more chunks per worker smooths out uneven
    run times at slightly higher pickling overhead.  Results come back in
    input order and are identical to a serial run of the same configs.

    ``cache`` makes the batch store-aware: any object with
    ``get(config) -> ExperimentResult | None`` and ``put(result)`` —
    e.g. ``CampaignStore.as_cache()`` — is consulted before running and
    fed every fresh result.  Cached configs never reach a worker, and
    because a run is fully determined by its config, a cache-hit batch
    is bit-identical (summaries, series, counters) to a cold one; with a
    cache present the metric stats are folded sequentially in input
    order, so they don't depend on which runs happened to be cached.
    """
    if not configs:
        raise ValueError("configs must be non-empty")
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if cache is not None:
        cache_width = getattr(cache, "series_bin_width", None)
        if cache_width is not None and cache_width != series_bin_width:
            raise ValueError(
                f"cache records series at bin width {cache_width} but this "
                f"batch bins at {series_bin_width}; build the cache with "
                "as_cache(series_bin_width=...) to match"
            )

    started = time.perf_counter()

    cached: dict[int, ExperimentResult] = {}
    if cache is not None:
        for i, config in enumerate(configs):
            hit = cache.get(config)
            if hit is not None:
                cached[i] = hit
    fresh_indices = [i for i in range(len(configs)) if i not in cached]
    fresh_configs = [configs[i] for i in fresh_indices]

    outputs: list[_ChunkOutput] = []
    slices: list[tuple[int, int]] = []
    if fresh_configs:
        jobs = min(jobs, len(fresh_configs))
        slices = _chunk_slices(len(fresh_configs), jobs * max(1, chunks_per_job))
        if jobs == 1:
            outputs = [
                _run_chunk(i, list(fresh_configs[start:stop]), series_bin_width)
                for i, (start, stop) in enumerate(slices)
            ]
        else:
            with ProcessPoolExecutor(
                max_workers=jobs, initializer=_worker_init
            ) as pool:
                futures = [
                    pool.submit(
                        _run_chunk, i, list(fresh_configs[start:stop]),
                        series_bin_width,
                    )
                    for i, (start, stop) in enumerate(slices)
                ]
                try:
                    outputs = [future.result() for future in futures]
                except KeyboardInterrupt:
                    # Undispatched chunks are cancelled; chunks already
                    # on a worker run to completion (workers ignore
                    # SIGINT) but their results are abandoned — the
                    # caller decides what "interrupted" means.
                    for future in futures:
                        future.cancel()
                    raise
        outputs.sort(key=lambda out: out.index)

    fresh_results: list[ExperimentResult] = []
    for out in outputs:
        fresh_results.extend(out.results)
    if cache is not None:
        for result in fresh_results:
            cache.put(result)

    results: list[ExperimentResult] = [None] * len(configs)  # type: ignore[list-item]
    for i, result in cached.items():
        results[i] = result
    for i, result in zip(fresh_indices, fresh_results):
        results[i] = result

    merged = {name: RunningStats() for name in METRIC_NAMES}
    if cache is None:
        for out in outputs:
            for name, partial in out.partials.items():
                merged[name] = merged[name].merge(partial)
    else:
        # Fold sequentially in input order: the same float-op order no
        # matter which subset came from the cache.
        for result in results:
            for name in METRIC_NAMES:
                merged[name].update(getattr(result.summary, name))
    return BatchResult(
        results=results,
        stats=merged,
        jobs=jobs,
        chunks=len(slices),
        wall_seconds=time.perf_counter() - started,
    )


def run_seeds_parallel(
    config: ExperimentConfig,
    seeds: Iterable[int],
    jobs: int | None = None,
    series_bin_width: float = 0.05,
    cache: ResultCache | None = None,
) -> BatchResult:
    """Multi-seed batch: ``config`` once per seed, fanned across workers."""
    return run_batch(
        seed_configs(config, seeds),
        jobs=jobs,
        series_bin_width=series_bin_width,
        cache=cache,
    )
