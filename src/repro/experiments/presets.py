"""Named experiment presets.

Curated configurations for the regimes this repository discusses, so
users (and the CLI) can reproduce them by name instead of reconstructing
parameter sets from the docs.
"""

from __future__ import annotations

from typing import Callable

from repro.attacks.spoofing import SpoofMode, SpoofingModel
from repro.experiments.config import DefenseKind, ExperimentConfig


def paper_default() -> ExperimentConfig:
    """Table II as published: Vt=50, Pd=90%, Γ=95%, N=40, R=1 Mbps."""
    return ExperimentConfig()


def heavy_attack() -> ExperimentConfig:
    """An attack-dominated mix (the paper's implied regime for Fig 4):
    60% zombies — β lands in the paper's 90-95% band here."""
    return ExperimentConfig(attack_fraction=0.6)


def low_rate_probe() -> ExperimentConfig:
    """Fig 3(b)'s weakest point: 100 kbps zombies.  Below threshold
    detection, so the victim's explicit notification triggers the ATRs."""
    return ExperimentConfig(rate_bps=100e3, force_activation_at=1.25)


def all_illegal_sources() -> ExperimentConfig:
    """One spoofing extreme: every attack source illegal/unreachable —
    the PDT legality shortcut does all the work."""
    return ExperimentConfig(spoofing=SpoofingModel(mode=SpoofMode.ILLEGAL))


def all_legal_spoofing() -> ExperimentConfig:
    """The other extreme: every spoofed source is a valid subnet address
    — only the probe verdicts can tell attack from legitimate."""
    return ExperimentConfig(
        spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET)
    )


def rotation_stress() -> ExperimentConfig:
    """Per-packet source rotation: one-packet flows defeat per-flow
    state; suppression degrades to the Bernoulli(Pd) gate.  SFT capped
    so the stress also exercises eviction."""
    config = ExperimentConfig(
        spoofing=SpoofingModel(
            mode=SpoofMode.LEGIT_SUBNET, rotate_per_packet=True
        )
    )
    config.mafic.max_sft_entries = 512
    return config


def pulsing_stress() -> ExperimentConfig:
    """Shrew-style on-off zombies with NFT re-probing enabled as the
    countermeasure."""
    config = ExperimentConfig(
        pulsing_attack=True, pulse_on=0.25, pulse_off=0.25
    )
    config.mafic.renotice_interval = 0.75
    return config


def filtered_domain() -> ExperimentConfig:
    """The paper's counterfactual: RFC 2827 ingress filtering deployed
    everywhere, MAFIC layered on top."""
    return ExperimentConfig(
        ingress_filtering=True,
        spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET),
    )


def realistic_control_plane() -> ExperimentConfig:
    """Pushback requests travel the control path instead of arriving
    instantly."""
    return ExperimentConfig(control_latency=True)


def proportional_baseline() -> ExperimentConfig:
    """The authors' earlier proportionate dropper [2] on the default
    scenario — the collateral-damage comparison point."""
    return ExperimentConfig(defense=DefenseKind.PROPORTIONAL)


def multi_tier_domain() -> ExperimentConfig:
    """ATRs at two depths behind aggregation routers: pushback requests
    travel unequal control paths, so near and far ingresses activate at
    different times (control-plane latency modelled)."""
    return ExperimentConfig(topology="multi_tier", control_latency=True)


def pulse_train() -> ExperimentConfig:
    """Deterministic duty-cycled zombies (exact 0.25 s on / 0.25 s off
    square wave) aimed at the verdict-timer weakness; NFT re-probing
    enabled as the countermeasure."""
    config = ExperimentConfig(attack="pulse_train", pulse_on=0.25, pulse_off=0.25)
    config.mafic.renotice_interval = 0.75
    return config


def huge_topology(scale: int = 8) -> ExperimentConfig:
    """Table II scaled up ``scale``x in population: a memory and
    throughput proof-point, not a paper figure.

    ``scale`` multiplies the host/zombie population (``total_flows``)
    and widens the domain; the attack mix, rates, and MAFIC parameters
    stay at their Table-II values so per-flow behaviour is unchanged —
    only the aggregate grows.  Defaults are chosen so the run *finishes
    in bounded memory*: the streaming victim collector replaces the
    buffered one (O(bins) instead of one tuple per arrival) and packet
    tracing is off (the trace would otherwise hoard 200k records).
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return ExperimentConfig(
        total_flows=50 * scale,
        n_routers=min(40 * scale, 320),
        duration=3.0,
        trace_enabled=False,
        streaming_series=True,
    )


def red_ratelimit() -> ExperimentConfig:
    """RED on the ingress uplinks plus per-ATR aggregate rate limiting —
    the queueing-level defence, for comparison against per-flow MAFIC."""
    return ExperimentConfig(defense="red_rate_limit")


PRESETS: dict[str, Callable[[], ExperimentConfig]] = {
    "paper-default": paper_default,
    "heavy-attack": heavy_attack,
    "low-rate-probe": low_rate_probe,
    "all-illegal-sources": all_illegal_sources,
    "all-legal-spoofing": all_legal_spoofing,
    "rotation-stress": rotation_stress,
    "pulsing-stress": pulsing_stress,
    "filtered-domain": filtered_domain,
    "realistic-control-plane": realistic_control_plane,
    "proportional-baseline": proportional_baseline,
    "multi-tier-domain": multi_tier_domain,
    "pulse-train": pulse_train,
    "red-ratelimit": red_ratelimit,
    "huge-topology": huge_topology,
}


def get_preset(name: str) -> ExperimentConfig:
    """Build the named preset's config (raises KeyError on unknown)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown preset {name!r}; known: {known}") from None
    return factory()
