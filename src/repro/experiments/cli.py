"""Command-line interface: run single experiments or regenerate figures.

Usage::

    python -m repro run [--flows N] [--pd P] [--seed S] [--defense KIND]
    python -m repro run --preset pulse-train --seeds 8 --jobs 4
    python -m repro run --list-presets
    python -m repro run --list {topologies,workloads,attacks,defenses,all}
    python -m repro serve [run flags] [--port P] [--pace X] [--linger]
    python -m repro serve --campaign spec.toml [--root DIR] [--jobs N]
    python -m repro replay recording.jsonl.gz [--port P] [--pace X]
    python -m repro figure fig3a [--scale S] [--out FILE]
    python -m repro campaign run|resume|status|report spec.toml
    python -m repro list

``run`` executes one scenario and prints the metric report card;
``figure`` regenerates one paper figure and prints (or writes) its data
table; ``list`` shows the available figures.  Component choices come
straight from the registries, so a newly registered topology, workload,
attack, or defence is immediately runnable by name.
"""

from __future__ import annotations

import argparse
import sys

from repro.attacks.scenarios import ATTACKS
from repro.campaign import cli as campaign_cli
from repro.lint import cli as lint_cli
from repro.core.defenses import DEFENSES
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.reporting import format_figure, format_summary
from repro.experiments.runner import run_experiment
from repro.experiments.workload import WORKLOADS
from repro.sim.topology import TOPOLOGIES

#: The registries ``run --list`` knows how to print.
COMPONENT_REGISTRIES = {
    "topologies": TOPOLOGIES,
    "workloads": WORKLOADS,
    "attacks": ATTACKS,
    "defenses": DEFENSES,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_config_flags(p: argparse.ArgumentParser) -> None:
    """The scenario-shaping flags shared by ``run`` and ``serve``.

    Workload/topology knobs default to None so that a --preset keeps
    its own values unless a flag is given explicitly.
    """
    p.add_argument("--flows", type=int, default=None, help="Vt, total flows")
    p.add_argument("--pd", type=float, default=None,
                   help="drop probability Pd (default 0.9)")
    p.add_argument("--tcp", type=float, default=None, help="TCP share Gamma")
    p.add_argument("--routers", type=int, default=None, help="domain size N")
    p.add_argument("--duration", type=float, default=None,
                   help="run length in seconds")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--topology", choices=TOPOLOGIES.names(), default=None)
    p.add_argument("--workload", choices=WORKLOADS.names(), default=None)
    p.add_argument("--attack", choices=ATTACKS.names(), default=None)
    p.add_argument("--defense", choices=DEFENSES.names(), default=None)
    p.add_argument(
        "--preset", type=str, default=None,
        help="start from a named preset (see --list-presets); "
        "explicit flags still override",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAFIC reproduction: run experiments and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scenario and print metrics")
    _add_config_flags(run_p)
    run_p.add_argument(
        "--seeds", type=_positive_int, default=1, metavar="K",
        help="run K seeds (seed, seed+1, ...) and print mean +/- CI "
        "instead of one report card",
    )
    run_p.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker processes for multi-seed runs (default: CPU count; "
        "1 = serial)",
    )
    run_p.add_argument(
        "--profile", metavar="FILE", default=None,
        help="profile the single-run path with cProfile and write the "
        "stats to FILE (inspect with `python -m pstats FILE`); a summary "
        "of the hottest functions is printed after the run",
    )
    run_p.add_argument(
        "--list-presets", action="store_true",
        help="print the named presets and exit",
    )
    run_p.add_argument(
        "--engine-info", action="store_true",
        help="print which engine core is active (compiled C extension "
        "or pure Python) and exit",
    )
    run_p.add_argument(
        "--list", dest="list_components", default=None,
        choices=sorted(COMPONENT_REGISTRIES) + ["all"],
        help="print one registry (or all of them) and exit",
    )
    run_p.add_argument(
        "--record", metavar="FILE", default=None,
        help="record the full typed event stream to a JSONL flight "
        "recording (.gz compresses); play it back with "
        "'python -m repro replay FILE'; single-run mode only",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run a scenario (or campaign shard) while serving live "
        "metrics over HTTP: dashboard at /, Prometheus text at /metrics, "
        "SSE at /events, JSON lines at /stream",
    )
    _add_config_flags(serve_p)
    serve_p.add_argument(
        "--campaign", default=None, metavar="SPEC",
        help="serve a campaign instead of a single run: execute the "
        "spec's missing cells in-process, streaming per-run events "
        "(artifacts are filed exactly as 'campaign run' would)",
    )
    serve_p.add_argument(
        "--root", default=None, metavar="DIR",
        help="campaign artifact root (only with --campaign; "
        "default: ./campaigns)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8765,
                         help="HTTP port (0 = pick a free one)")
    serve_p.add_argument(
        "--pace", type=float, default=0.0, metavar="X",
        help="simulated seconds advanced per wall-clock second "
        "(0 = run at full speed); single-run mode only",
    )
    serve_p.add_argument(
        "--window", type=float, default=1.0, metavar="S",
        help="sliding window for windowed rates, in sim seconds",
    )
    serve_p.add_argument(
        "--linger", action="store_true",
        help="keep serving after the run finishes until Ctrl-C "
        "(otherwise the server stops once the work is done)",
    )
    serve_p.add_argument(
        "--record", metavar="FILE", default=None,
        help="also record the full typed event stream to a JSONL "
        "flight recording (.gz compresses) for 'repro replay'",
    )
    serve_p.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="with --campaign: fan the missing cells across N worker "
        "processes, multiplexing their event streams into this "
        "server (default 1 = in-process)",
    )

    replay_p = sub.add_parser(
        "replay",
        help="serve a recorded run: feed a flight recording back "
        "through the live dashboard/metrics/SSE stack",
    )
    replay_p.add_argument(
        "recording", help="JSONL recording written by --record"
    )
    replay_p.add_argument("--host", default="127.0.0.1")
    replay_p.add_argument("--port", type=int, default=8765,
                          help="HTTP port (0 = pick a free one)")
    replay_p.add_argument(
        "--pace", type=float, default=0.0, metavar="X",
        help="recorded seconds replayed per wall-clock second "
        "(0 = feed as fast as possible)",
    )
    replay_p.add_argument(
        "--window", type=float, default=1.0, metavar="S",
        help="sliding window for windowed rates, in sim seconds",
    )
    replay_p.add_argument(
        "--no-linger", dest="linger", action="store_false", default=True,
        help="exit after feeding the recording instead of serving "
        "until Ctrl-C",
    )

    fig_p = sub.add_parser("figure", help="regenerate one paper figure")
    fig_p.add_argument("name", choices=sorted(ALL_FIGURES))
    fig_p.add_argument("--scale", type=float, default=1.0,
                       help="sweep resolution (0-1]; smaller = faster")
    fig_p.add_argument("--out", type=str, default=None,
                       help="write the data table to this file")

    campaign_cli.add_parser(sub)
    lint_cli.add_parser(sub)

    sub.add_parser("list", help="list the available figures")
    sub.add_parser("presets", help="list the named experiment presets")

    val_p = sub.add_parser(
        "validate", help="feasibility-check a configuration without running"
    )
    val_p.add_argument("--flows", type=int, default=50)
    val_p.add_argument("--pd", type=float, default=0.9)
    val_p.add_argument("--tcp", type=float, default=0.95)
    val_p.add_argument("--routers", type=int, default=40)
    val_p.add_argument("--rate", type=float, default=1e6,
                       help="attack source rate R in bits/s")
    return parser


def _print_presets() -> int:
    from repro.experiments.presets import PRESETS

    for name in sorted(PRESETS):
        doc = (PRESETS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:<26} {doc}")
    return 0


def _print_registries(which: str) -> int:
    names = (
        sorted(COMPONENT_REGISTRIES)
        if which == "all"
        else [which]
    )
    for i, kind in enumerate(names):
        if i:
            print()
        print(f"{kind}:")
        for name, doc in COMPONENT_REGISTRIES[kind].describe():
            print(f"  {name:<24} {doc}")
    return 0


def _run_config(args: argparse.Namespace) -> ExperimentConfig:
    """Build the run's config: preset (if any) + explicit flag overrides."""
    overrides = {
        key: value
        for key, value in (
            ("total_flows", args.flows),
            ("tcp_fraction", args.tcp),
            ("n_routers", args.routers),
            ("duration", args.duration),
            ("topology", args.topology),
            ("workload", args.workload),
            ("attack", args.attack),
            ("defense", args.defense),
        )
        if value is not None
    }
    overrides["seed"] = args.seed
    if args.preset:
        from repro.experiments.presets import get_preset

        config = get_preset(args.preset).with_overrides(**overrides)
    else:
        config = ExperimentConfig(**overrides)
    if args.pd is not None:
        config.mafic.drop_probability = args.pd
    return config


def _print_engine_info() -> int:
    from repro.sim._core import core_info

    info = core_info()
    print(f"engine core: {info['impl']} ({info['module']})")
    if info["forced_pure"]:
        print("REPRO_NO_COMPILED is set: the pure-Python engine is forced")
    elif info["impl"] == "pure":
        print("compiled extension not built; build it with "
              "`python setup.py build_ext --inplace`")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.engine_info:
        return _print_engine_info()
    if args.list_presets:
        return _print_presets()
    if args.list_components:
        return _print_registries(args.list_components)
    config = _run_config(args)
    if args.seeds > 1:
        if args.profile:
            print("--profile profiles the single-run path; drop --seeds",
                  file=sys.stderr)
            return 2
        if args.record:
            print("--record captures one run's event stream; drop --seeds",
                  file=sys.stderr)
            return 2
        return _cmd_run_multi_seed(config, args)
    bus = None
    recorder = None
    if args.record:
        from repro.obs.bus import EventBus
        from repro.obs.recorder import JsonlSink

        recorder = JsonlSink(args.record, metadata={
            "command": "run",
            "scenario": (
                f"{config.topology}/{config.workload}/"
                f"{config.attack}/{config.defense}"
            ),
            "seed": config.seed,
            "duration": config.duration,
            "config_hash": config.config_hash(),
        })
        bus = EventBus()
        bus.subscribe(recorder)
    try:
        if args.profile:
            result = _run_profiled(config, args.profile, bus=bus)
        else:
            result = run_experiment(config, bus=bus)
    finally:
        if recorder is not None:
            recorder.close()
    if recorder is not None:
        print(
            f"recorded {recorder.events_written} events to {args.record}",
        )
    print(format_summary(result.summary))
    if result.activation_time is not None:
        print(f"\npushback triggered at t={result.activation_time:.2f}s; "
              f"ATR recall {result.atr_recall:.0%}")
    else:
        print("\npushback never triggered")
    return 0


def _run_profiled(config: ExperimentConfig, out_path: str, bus=None):
    """Run one experiment under cProfile; write stats, print the top.

    Thin wrapper over :func:`repro.experiments.profiling.profiled_call`
    — the same machinery behind ``campaign run --profile`` (and its
    ``REPRO_PROFILE`` env-var form), which profiles one grid cell.
    """
    from repro.experiments.profiling import profiled_call

    return profiled_call(lambda: run_experiment(config, bus=bus), out_path)


def _cmd_run_multi_seed(config: ExperimentConfig, args: argparse.Namespace) -> int:
    from repro.analysis.aggregate import aggregate_runs
    from repro.experiments.parallel import run_seeds_parallel

    seeds = [config.seed + offset for offset in range(args.seeds)]
    batch = run_seeds_parallel(config, seeds, jobs=args.jobs)
    for run in batch.results:
        pct = run.summary.as_percent()
        print(
            f"seed {run.config.seed:>4}: alpha={pct['alpha']:6.2f}%  "
            f"beta={pct['beta']:6.2f}%  theta_p={pct['theta_p']:5.2f}%  "
            f"theta_n={pct['theta_n']:5.2f}%  Lr={pct['Lr']:5.2f}%"
        )
    print()
    print(aggregate_runs(batch.results).as_percent_table())
    print(
        f"\n{len(seeds)} seeds in {batch.wall_seconds:.1f}s "
        f"({batch.jobs} worker{'s' if batch.jobs != 1 else ''})"
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    figure = ALL_FIGURES[args.name](scale=args.scale)
    table = format_figure(figure)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(table + "\n")
        print(f"wrote {args.out}")
    else:
        print(table)
    return 0


def _cmd_list() -> int:
    for name in sorted(ALL_FIGURES):
        doc = (ALL_FIGURES[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:>6}  {doc}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import validate_config

    config = ExperimentConfig(
        total_flows=args.flows,
        tcp_fraction=args.tcp,
        n_routers=args.routers,
        rate_bps=args.rate,
    )
    config.mafic.drop_probability = args.pd
    report = validate_config(config)
    for finding in report:
        print(f"[{finding.severity.value:>7}] {finding.code}: {finding.message}")
    print("\nfeasible" if report.ok else "\nNOT feasible")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        from repro.obs.serve import cmd_serve

        return cmd_serve(args)
    if args.command == "replay":
        from repro.obs.serve import cmd_replay

        return cmd_replay(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "campaign":
        return campaign_cli.cmd(args)
    if args.command == "lint":
        return lint_cli.cmd(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "presets":
        return _print_presets()
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
