"""Command-line interface: run single experiments or regenerate figures.

Usage::

    python -m repro run [--flows N] [--pd P] [--seed S] [--defense KIND]
    python -m repro figure fig3a [--scale S] [--out FILE]
    python -m repro list

``run`` executes one scenario and prints the metric report card;
``figure`` regenerates one paper figure and prints (or writes) its data
table; ``list`` shows the available figures.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import DefenseKind, ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.reporting import format_figure, format_summary
from repro.experiments.runner import run_experiment


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAFIC reproduction: run experiments and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scenario and print metrics")
    run_p.add_argument("--flows", type=int, default=50, help="Vt, total flows")
    run_p.add_argument("--pd", type=float, default=0.9, help="drop probability Pd")
    run_p.add_argument("--tcp", type=float, default=0.95, help="TCP share Gamma")
    run_p.add_argument("--routers", type=int, default=40, help="domain size N")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument(
        "--defense",
        choices=[kind.value for kind in DefenseKind],
        default=DefenseKind.MAFIC.value,
    )
    run_p.add_argument(
        "--preset", type=str, default=None,
        help="start from a named preset (see `python -m repro presets`); "
        "other flags still override",
    )
    run_p.add_argument(
        "--seeds", type=_positive_int, default=1, metavar="K",
        help="run K seeds (seed, seed+1, ...) and print mean +/- CI "
        "instead of one report card",
    )
    run_p.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker processes for multi-seed runs (default: CPU count; "
        "1 = serial)",
    )

    fig_p = sub.add_parser("figure", help="regenerate one paper figure")
    fig_p.add_argument("name", choices=sorted(ALL_FIGURES))
    fig_p.add_argument("--scale", type=float, default=1.0,
                       help="sweep resolution (0-1]; smaller = faster")
    fig_p.add_argument("--out", type=str, default=None,
                       help="write the data table to this file")

    sub.add_parser("list", help="list the available figures")
    sub.add_parser("presets", help="list the named experiment presets")

    val_p = sub.add_parser(
        "validate", help="feasibility-check a configuration without running"
    )
    val_p.add_argument("--flows", type=int, default=50)
    val_p.add_argument("--pd", type=float, default=0.9)
    val_p.add_argument("--tcp", type=float, default=0.95)
    val_p.add_argument("--routers", type=int, default=40)
    val_p.add_argument("--rate", type=float, default=1e6,
                       help="attack source rate R in bits/s")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "preset", None):
        from repro.experiments.presets import get_preset

        config = get_preset(args.preset)
        config = config.with_overrides(seed=args.seed)
    else:
        config = ExperimentConfig(
            total_flows=args.flows,
            tcp_fraction=args.tcp,
            n_routers=args.routers,
            seed=args.seed,
            defense=DefenseKind(args.defense),
        )
    config.mafic.drop_probability = args.pd
    if args.seeds > 1:
        return _cmd_run_multi_seed(config, args)
    result = run_experiment(config)
    print(format_summary(result.summary))
    if result.activation_time is not None:
        print(f"\npushback triggered at t={result.activation_time:.2f}s; "
              f"ATR recall {result.atr_recall:.0%}")
    else:
        print("\npushback never triggered")
    return 0


def _cmd_run_multi_seed(config: ExperimentConfig, args: argparse.Namespace) -> int:
    from repro.analysis.aggregate import aggregate_runs
    from repro.experiments.parallel import run_seeds_parallel

    seeds = [config.seed + offset for offset in range(args.seeds)]
    batch = run_seeds_parallel(config, seeds, jobs=args.jobs)
    for run in batch.results:
        pct = run.summary.as_percent()
        print(
            f"seed {run.config.seed:>4}: alpha={pct['alpha']:6.2f}%  "
            f"beta={pct['beta']:6.2f}%  theta_p={pct['theta_p']:5.2f}%  "
            f"theta_n={pct['theta_n']:5.2f}%  Lr={pct['Lr']:5.2f}%"
        )
    print()
    print(aggregate_runs(batch.results).as_percent_table())
    print(
        f"\n{len(seeds)} seeds in {batch.wall_seconds:.1f}s "
        f"({batch.jobs} worker{'s' if batch.jobs != 1 else ''})"
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    figure = ALL_FIGURES[args.name](scale=args.scale)
    table = format_figure(figure)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(table + "\n")
        print(f"wrote {args.out}")
    else:
        print(table)
    return 0


def _cmd_list() -> int:
    for name in sorted(ALL_FIGURES):
        doc = (ALL_FIGURES[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:>6}  {doc}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import validate_config

    config = ExperimentConfig(
        total_flows=args.flows,
        tcp_fraction=args.tcp,
        n_routers=args.routers,
        rate_bps=args.rate,
    )
    config.mafic.drop_probability = args.pd
    report = validate_config(config)
    for finding in report:
        print(f"[{finding.severity.value:>7}] {finding.code}: {finding.message}")
    print("\nfeasible" if report.ok else "\nNOT feasible")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "presets":
        from repro.experiments.presets import PRESETS, get_preset

        for name in sorted(PRESETS):
            doc = (PRESETS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:<26} {doc}")
        return 0
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
