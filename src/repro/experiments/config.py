"""Experiment configuration: Table II defaults plus the workload model.

The paper's Table II gives: Pd = 90%, R = 1e6, Vt = 50 flows, Γ = 95%,
N = 40 routers.  Two interpretation notes (also in DESIGN.md):

* **R** is taken as the per-source sending rate in bits/s (Fig. 3(b)'s
  axis runs "100kbps to 1Mbps"), not 1e6 packets/s.
* **Γ** is the fraction of *legitimate* flows that are responsive TCP;
  the remainder are legitimate but unresponsive (UDP-style) flows — the
  collateral-damage zone the paper discusses.  Attack flows are counted
  separately via ``attack_fraction`` (they mimic TCP on the wire but
  never respond, which is exactly the paper's threat model).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from enum import Enum

from repro.attacks.scenarios import ATTACKS
from repro.attacks.spoofing import SpoofingModel, SpoofMode
from repro.core.config import MaficConfig
from repro.core.defenses import DEFENSES
from repro.counting.pushback import PushbackPolicyConfig
from repro.experiments.workload import WORKLOADS
from repro.sim.topology import TOPOLOGIES
from repro.util.registry import Registry
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)


class _ComponentKind(str, Enum):
    """Base for the legacy component enums.

    The ``topology``/``defense`` fields are registry-validated *names*
    now; these enums survive for back-compat.  Members compare and hash
    as their string value, so ``TopologyKind.STAR == "star"`` and either
    spelling works as a registry key or dict key.
    """

    __hash__ = str.__hash__

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TopologyKind(_ComponentKind):
    """Legacy names for the built-in topologies (see ``TOPOLOGIES``)."""

    STAR = "star"
    TREE = "tree"
    TRANSIT_STUB = "transit_stub"


class DefenseKind(_ComponentKind):
    """Legacy names for the built-in defences (see ``DEFENSES``)."""

    MAFIC = "mafic"
    PROPORTIONAL = "proportional"  # the [2] baseline
    RATE_LIMIT = "rate_limit"  # aggregate pushback baseline
    NONE = "none"  # undefended control


def _component_name(registry: Registry, value, enum_cls=None):
    """Canonicalise a component name against its registry.

    Returns the legacy enum member when one exists for the name (so
    ``config.defense is DefenseKind.MAFIC`` keeps holding) and the plain
    canonical string for components registered after these enums froze.
    Unknown names raise ``UnknownComponentError`` listing what exists.
    """
    name = registry.canonical(value)
    if enum_cls is not None:
        try:
            return enum_cls(name)
        except ValueError:
            pass
    return name


@dataclass
class ExperimentConfig:
    """Everything one run needs.  Defaults reproduce Table II."""

    # ---- Table II -------------------------------------------------------
    total_flows: int = 50  # Vt
    tcp_fraction: float = 0.95  # Γ (of legitimate flows)
    rate_bps: float = 1e6  # R (per attack source)
    n_routers: int = 40  # N (domain size)
    # MaficConfig.drop_probability is Pd (default 0.90).

    # ---- Workload -------------------------------------------------------
    attack_fraction: float = 0.4  # share of Vt that are zombies
    legit_rate_factor: float = 0.2  # legit UDP app rate = factor * R
    tcp_max_cwnd: float = 6.0  # window cap of the greedy FTP-like sources
    packet_size: int = 1000
    victim_port: int = 80
    udp_port: int = 9
    spoofing: SpoofingModel = field(
        default_factory=lambda: SpoofingModel(mode=SpoofMode.MIXED, illegal_fraction=0.25)
    )
    pulsing_attack: bool = False  # shrew-style on-off zombies
    pulse_on: float = 0.25  # mean burst seconds (pulsing only)
    pulse_off: float = 0.25  # mean silence seconds (pulsing only)

    # ---- Timeline -------------------------------------------------------
    # The attack begins strictly after the detector's warm-up epochs
    # (warmup_epochs x monitor_period = 1.0 s) so the calm baseline is
    # learned from legitimate traffic only.
    duration: float = 4.5
    attack_start: float = 1.05
    legit_start_spread: float = 0.3  # legit flows start in [0, spread)

    # ---- Components -----------------------------------------------------
    # Registry-validated names (legacy enum members accepted); see
    # TOPOLOGIES, WORKLOADS, ATTACKS, DEFENSES for what is available and
    # `python -m repro run --list all` for one-line docs.
    topology: TopologyKind | str = TopologyKind.TRANSIT_STUB
    workload: str = "paper_static"
    attack: str = "flood"
    # Per-component keyword arguments, forwarded verbatim to the chosen
    # builder by the scenario composer (``build_multi_tier_domain``'s
    # ``n_agg``, an attack's ``ingress_subset``, ...).  Keys a builder
    # does not accept raise TypeError at build time, naming the builder.
    topology_args: dict = field(default_factory=dict)
    workload_args: dict = field(default_factory=dict)
    attack_args: dict = field(default_factory=dict)
    defense_args: dict = field(default_factory=dict)

    # ---- Topology -------------------------------------------------------
    core_bandwidth_bps: float = 622e6
    access_bandwidth_bps: float = 100e6
    victim_bandwidth_bps: float = 100e6
    link_delay: float = 0.012
    queue_capacity: int = 256

    # ---- Counting / detection ------------------------------------------
    monitor_period: float = 0.25
    loglog_k: int = 11
    pushback: PushbackPolicyConfig = field(
        default_factory=lambda: PushbackPolicyConfig(
            overload_factor=1.6,
            share_threshold=0.02,
            baseline_rate=50.0,
            min_absolute=15.0,
            hysteresis_epochs=40,
            warmup_epochs=4,
            calm_band=1.3,
        )
    )

    # ---- Defence --------------------------------------------------------
    defense: DefenseKind | str = DefenseKind.MAFIC
    mafic: MaficConfig = field(default_factory=MaficConfig)
    rate_limit_bps: float = 500e3  # per-ATR budget for the baseline
    # When set, every ATR activates at this absolute time — modelling the
    # victim's explicit DDoS notification instead of the threshold
    # detector (used by sweeps whose attack volume is below detection
    # sensitivity, e.g. the Fig 3(b) low-rate series).
    force_activation_at: float | None = None
    # Model pushback-signalling latency: requests travel the control path
    # from the victim's last-hop router to each ATR (shortest-path delay
    # + per-hop processing) instead of arriving instantly.
    control_latency: bool = False
    control_per_hop_processing: float = 0.001
    # RFC 2827 ingress filtering at every ingress router: hosts cannot
    # claim sources outside their own subnet.  Off by default — the paper
    # explicitly assumes it is "still far from widely deployed".
    ingress_filtering: bool = False

    # ---- Bookkeeping ----------------------------------------------------
    seed: int = 1
    trace_enabled: bool = True
    trace_max_records: int | None = 200_000
    # Use the bounded-memory streaming victim collector instead of the
    # buffered one (float-identical summary/series, O(bins) memory).
    # Presets whose populations would hoard millions of arrival tuples —
    # huge-topology — turn this on by default; run_experiment's own
    # ``streaming_series`` argument also forces it on for one call.
    streaming_series: bool = False

    def __post_init__(self) -> None:
        self.topology = _component_name(TOPOLOGIES, self.topology, TopologyKind)
        self.workload = _component_name(WORKLOADS, self.workload)
        self.attack = _component_name(ATTACKS, self.attack)
        self.defense = _component_name(DEFENSES, self.defense, DefenseKind)
        for label in ("topology_args", "workload_args", "attack_args", "defense_args"):
            value = getattr(self, label)
            if not isinstance(value, dict) or any(
                not isinstance(key, str) for key in value
            ):
                raise ValueError(f"{label} must be a dict with string keys")
        if self.total_flows < 1:
            raise ValueError("total_flows must be >= 1")
        check_fraction("tcp_fraction", self.tcp_fraction)
        check_fraction("attack_fraction", self.attack_fraction)
        check_positive("rate_bps", self.rate_bps)
        check_positive("legit_rate_factor", self.legit_rate_factor)
        if self.n_routers < 3:
            raise ValueError("n_routers must be >= 3")
        check_positive("packet_size", self.packet_size)
        check_positive("duration", self.duration)
        check_non_negative("attack_start", self.attack_start)
        if self.attack_start >= self.duration:
            raise ValueError("attack_start must fall inside the run")
        check_non_negative("legit_start_spread", self.legit_start_spread)
        check_positive("monitor_period", self.monitor_period)
        check_positive("rate_limit_bps", self.rate_limit_bps)
        if self.pulsing_attack:
            check_positive("pulse_on", self.pulse_on)
            check_non_negative("pulse_off", self.pulse_off)
        if self.force_activation_at is not None and not (
            0.0 <= self.force_activation_at < self.duration
        ):
            raise ValueError("force_activation_at must fall inside the run")

    # ---- Derived workload counts ----------------------------------------

    @property
    def n_zombies(self) -> int:
        """Number of attack flows (at least 1 when attack_fraction > 0)."""
        if self.attack_fraction == 0:
            return 0
        return max(1, round(self.attack_fraction * self.total_flows))

    @property
    def n_legit(self) -> int:
        """Number of legitimate flows."""
        return self.total_flows - self.n_zombies

    @property
    def n_tcp(self) -> int:
        """Legitimate responsive (TCP) flows."""
        return round(self.tcp_fraction * self.n_legit)

    @property
    def n_udp_legit(self) -> int:
        """Legitimate unresponsive (UDP-style) flows."""
        return self.n_legit - self.n_tcp

    @property
    def legit_rate_bps(self) -> float:
        """Application rate of each legitimate flow."""
        return self.legit_rate_factor * self.rate_bps

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    # ---- Canonical serialization / content addressing --------------------
    #
    # The campaign store keys run artifacts by a *stable* hash of the
    # full configuration: the same config must hash identically across
    # processes, platforms, and repo checkouts, so the hash is computed
    # over a canonical JSON form (sorted keys, no whitespace, enums as
    # their values) rather than over pickle or repr.

    def to_dict(self) -> dict:
        """A canonical, JSON-friendly dict of every field (recursive)."""
        return _canonical_value(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Nested component configs (``mafic``, ``pushback``, ``spoofing``)
        are reconstructed into their dataclasses; missing keys fall back
        to field defaults, so artifacts written by older configs load
        under newer ones.
        """
        kwargs = dict(data)
        if isinstance(kwargs.get("mafic"), dict):
            kwargs["mafic"] = MaficConfig(**kwargs["mafic"])
        if isinstance(kwargs.get("pushback"), dict):
            kwargs["pushback"] = PushbackPolicyConfig(**kwargs["pushback"])
        if isinstance(kwargs.get("spoofing"), dict):
            spoofing = dict(kwargs["spoofing"])
            spoofing["mode"] = SpoofMode(spoofing["mode"])
            kwargs["spoofing"] = SpoofingModel(**spoofing)
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """Whitespace-free, key-sorted JSON — the hashing pre-image."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )

    def config_hash(self) -> str:
        """A 16-hex-digit content hash identifying this exact config.

        SHA-256 over :meth:`canonical_json`, truncated to 64 bits —
        plenty for store keys (collision odds at a million runs are
        ~1e-8) while keeping file names short.
        """
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:16]


def _canonical_value(value):
    """Recursively convert config values into JSON-canonical form."""
    if isinstance(value, Enum):
        return _canonical_value(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise TypeError(f"config dict keys must be str, got {key!r}")
            out[key] = _canonical_value(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"config field value {value!r} ({type(value).__name__}) is not "
        "canonically serializable"
    )
