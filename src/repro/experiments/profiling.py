"""cProfile wrapper shared by ``run --profile`` and ``campaign run --profile``.

Future perf work starts from data: both CLIs capture exactly the
single-run hot path (scenario build plus the event loop), dump pstats
to a file (inspect with ``python -m pstats FILE``), and print the
hottest functions.  The campaign variant profiles *one grid cell* —
profiling a whole grid would smear unrelated cells together, and the
worker processes of a parallel wave can't be profiled from the parent
anyway — which is why :func:`repro.campaign.orchestrator.run_campaign`
forces ``jobs=1, max_runs=1`` while a profile is requested.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Callable, TypeVar

T = TypeVar("T")

#: Environment variable equivalent of ``--profile`` for campaign runs
#: (handy when the invocation is buried in a Makefile or CI job).
PROFILE_ENV_VAR = "REPRO_PROFILE"


def profiled_call(
    fn: Callable[[], T], out_path: str, top: int = 15
) -> T:
    """Run ``fn`` under cProfile; dump stats, print the top, return."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    profiler.dump_stats(out_path)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)
    print(f"profile written to {out_path}")
    return result
