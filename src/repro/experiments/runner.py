"""Run one scenario and collect its results."""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import BuiltScenario, build_scenario
from repro.metrics.rates import DEFAULT_PRE_WINDOW, MetricsSummary, summarize
from repro.metrics.timeseries import BandwidthSeries


@dataclass
class ExperimentResult:
    """One run's outputs.

    ``scenario`` is the live simulation object graph and is ``None`` on
    results that crossed a process boundary (see :meth:`detached`); every
    other field is plain picklable data.
    """

    config: ExperimentConfig
    summary: MetricsSummary
    series: BandwidthSeries
    scenario: BuiltScenario | None
    activation_time: float | None
    identified_atrs: set[str] = field(default_factory=set)
    true_atrs: set[str] = field(default_factory=set)
    events_executed: int = 0
    wall_seconds: float = 0.0

    def detached(self) -> "ExperimentResult":
        """A copy without the (unpicklable) scenario object graph."""
        return replace(self, scenario=None)

    @property
    def atr_precision(self) -> float:
        """Fraction of identified ATRs that truly carried attack flows."""
        if not self.identified_atrs:
            return 0.0
        return len(self.identified_atrs & self.true_atrs) / len(self.identified_atrs)

    @property
    def atr_recall(self) -> float:
        """Fraction of true ATRs that were identified."""
        if not self.true_atrs:
            return 1.0
        return len(self.identified_atrs & self.true_atrs) / len(self.true_atrs)


def run_experiment(
    config: ExperimentConfig,
    scenario: BuiltScenario | None = None,
    series_bin_width: float = 0.05,
    bus=None,
    streaming_series: bool = False,
    slice_seconds: float | None = None,
    on_slice: Callable[[float], None] | None = None,
) -> ExperimentResult:
    """Build (unless given), run to ``config.duration``, and summarize.

    The packet free-list pool is enabled for the duration of the run
    (unless ``repro.perf.FLAGS.packet_pool`` is off): the simulation
    never retains a delivered or dropped packet, so recycling is safe
    here, while unit tests that hold raw packets run with the pool off.

    Observability (all off by default, and provably free when off —
    the golden master pins every combination bit-exact):

    ``bus``
        An :class:`~repro.obs.bus.EventBus`; the scenario's collectors,
        monitor, and victim-side links publish onto it, and the runner
        brackets the run with ``run.started``/``run.completed`` events.
    ``streaming_series``
        Replace the buffered victim collector (which hoards one tuple
        per arrival) with the bounded-memory streaming one; the summary
        and series are float-identical, the memory is O(bins).
    ``slice_seconds`` / ``on_slice``
        Execute the run in clock slices of at most ``slice_seconds``
        simulated seconds, invoking ``on_slice(sim_now)`` between
        slices.  Slicing runs the *identical* event sequence (the event
        loop just pauses at slice boundaries); the serve layer uses it
        for wall-clock pacing and Ctrl-C responsiveness.
    """
    from repro.perf import FLAGS
    from repro.sim.packet import enable_packet_pool, reset_packet_ids

    reduction_window = config.mafic.probe_window(None)
    victim_collector = None
    # The config can request streaming collection too (huge-topology
    # presets default to it); either switch turns it on.
    streaming_series = streaming_series or getattr(
        config, "streaming_series", False
    )
    if streaming_series:
        from repro.metrics.collectors import StreamingVictimCollector

        victim_collector = StreamingVictimCollector(
            duration=config.duration,
            series_bin_width=series_bin_width,
            reduction_window=reduction_window,
            pre_window=DEFAULT_PRE_WINDOW,
            bus=bus,
        )

    if scenario is not None and victim_collector is not None:
        raise ValueError(
            "streaming_series only applies when the runner builds the "
            "scenario; a pre-built scenario already owns its collector"
        )

    reset_packet_ids()
    pooled = FLAGS.packet_pool
    if pooled:
        enable_packet_pool(True)
    try:
        if scenario is None:
            scenario = build_scenario(
                config, bus=bus, victim_collector=victim_collector
            )
        if bus:
            _emit_run_started(bus, config)
        started = time.perf_counter()
        if slice_seconds is None and on_slice is None:
            scenario.sim.run(until=config.duration)
        else:
            _run_sliced(scenario.sim, config.duration, slice_seconds, on_slice)
        wall = time.perf_counter() - started
    finally:
        if pooled:
            enable_packet_pool(False)

    summary = summarize(
        scenario.defense_collector,
        scenario.victim_collector,
        reduction_window=reduction_window,
    )
    victim = scenario.victim_collector
    if hasattr(victim, "series"):
        series = victim.series.finish()
    else:
        series = BandwidthSeries.from_arrivals(
            victim.arrivals,
            start=0.0,
            end=config.duration,
            bin_width=series_bin_width,
        )
    identified = {
        request.atr_name
        for request in scenario.coordinator.requests
        if request.action == "start"
    }
    result = ExperimentResult(
        config=config,
        summary=summary,
        series=series,
        scenario=scenario,
        activation_time=scenario.victim_collector.defense_activated_at,
        identified_atrs=identified,
        true_atrs=scenario.attack.atr_ground_truth,
        events_executed=scenario.sim.events_executed,
        wall_seconds=wall,
    )
    if bus:
        _emit_run_completed(bus, result)
    return result


def _run_sliced(sim, duration: float, slice_seconds, on_slice) -> None:
    """Advance the clock in bounded slices, pausing between them.

    ``sim.run(until=t)`` executes every event with time <= t and leaves
    the queue untouched otherwise, so repeated calls execute exactly the
    events a single ``run(until=duration)`` would, in the same order.
    """
    step = 0.05 if slice_seconds is None else float(slice_seconds)
    if step <= 0:
        raise ValueError("slice_seconds must be positive")
    t = 0.0
    while t < duration:
        t = min(t + step, duration)
        sim.run(until=t)
        if on_slice is not None:
            on_slice(sim.now)


def _emit_run_started(bus, config: ExperimentConfig) -> None:
    from repro.obs.events import RunStarted
    from repro.sim._core import core_info

    bus.emit(RunStarted(
        time=0.0,
        run_id=config.config_hash(),
        seed=config.seed,
        scenario=(
            f"{config.topology}/{config.workload}/"
            f"{config.attack}/{config.defense}"
        ),
        duration=config.duration,
        engine=core_info()["impl"],
    ))


def _emit_run_completed(bus, result: ExperimentResult) -> None:
    from repro.obs.events import RunCompleted

    pct = result.summary.as_percent()
    bus.emit(RunCompleted(
        time=result.config.duration,
        run_id=result.config.config_hash(),
        seed=result.config.seed,
        alpha=pct["alpha"],
        beta=pct["beta"],
        theta_p=pct["theta_p"],
        theta_n=pct["theta_n"],
        lr=pct["Lr"],
        events_executed=result.events_executed,
        wall_seconds=result.wall_seconds,
    ))
