"""Run one scenario and collect its results."""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import BuiltScenario, build_scenario
from repro.metrics.rates import MetricsSummary, summarize
from repro.metrics.timeseries import BandwidthSeries


@dataclass
class ExperimentResult:
    """One run's outputs.

    ``scenario`` is the live simulation object graph and is ``None`` on
    results that crossed a process boundary (see :meth:`detached`); every
    other field is plain picklable data.
    """

    config: ExperimentConfig
    summary: MetricsSummary
    series: BandwidthSeries
    scenario: BuiltScenario | None
    activation_time: float | None
    identified_atrs: set[str] = field(default_factory=set)
    true_atrs: set[str] = field(default_factory=set)
    events_executed: int = 0
    wall_seconds: float = 0.0

    def detached(self) -> "ExperimentResult":
        """A copy without the (unpicklable) scenario object graph."""
        return replace(self, scenario=None)

    @property
    def atr_precision(self) -> float:
        """Fraction of identified ATRs that truly carried attack flows."""
        if not self.identified_atrs:
            return 0.0
        return len(self.identified_atrs & self.true_atrs) / len(self.identified_atrs)

    @property
    def atr_recall(self) -> float:
        """Fraction of true ATRs that were identified."""
        if not self.true_atrs:
            return 1.0
        return len(self.identified_atrs & self.true_atrs) / len(self.true_atrs)


def run_experiment(
    config: ExperimentConfig,
    scenario: BuiltScenario | None = None,
    series_bin_width: float = 0.05,
) -> ExperimentResult:
    """Build (unless given), run to ``config.duration``, and summarize.

    The packet free-list pool is enabled for the duration of the run
    (unless ``repro.perf.FLAGS.packet_pool`` is off): the simulation
    never retains a delivered or dropped packet, so recycling is safe
    here, while unit tests that hold raw packets run with the pool off.
    """
    from repro.perf import FLAGS
    from repro.sim.packet import enable_packet_pool, reset_packet_ids

    reset_packet_ids()
    pooled = FLAGS.packet_pool
    if pooled:
        enable_packet_pool(True)
    try:
        if scenario is None:
            scenario = build_scenario(config)
        started = time.perf_counter()
        scenario.sim.run(until=config.duration)
        wall = time.perf_counter() - started
    finally:
        if pooled:
            enable_packet_pool(False)

    reduction_window = config.mafic.probe_window(None)
    summary = summarize(
        scenario.defense_collector,
        scenario.victim_collector,
        reduction_window=reduction_window,
    )
    series = BandwidthSeries.from_arrivals(
        scenario.victim_collector.arrivals,
        start=0.0,
        end=config.duration,
        bin_width=series_bin_width,
    )
    identified = {
        request.atr_name
        for request in scenario.coordinator.requests
        if request.action == "start"
    }
    return ExperimentResult(
        config=config,
        summary=summary,
        series=series,
        scenario=scenario,
        activation_time=scenario.victim_collector.defense_activated_at,
        identified_atrs=identified,
        true_atrs=scenario.attack.atr_ground_truth,
        events_executed=scenario.sim.events_executed,
        wall_seconds=wall,
    )
