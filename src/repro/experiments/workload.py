"""Legitimate workloads: the paper's static flows and dynamic mice.

Two shapes of background traffic live here:

* the **static** workload of the paper's evaluation — ``n_tcp`` greedy
  long-lived TCP flows plus ``n_udp_legit`` constant-rate UDP flows,
  placed round-robin over the ingress subnets (the registry's
  ``paper_static`` entry, extracted from the old monolithic
  ``build_scenario``);
* **dynamic web-like mice** — Poisson arrivals of finite TCP transfers
  with heavy-tailed sizes, recording each flow's completion time so
  MAFIC's impact on user-visible latency (FCT) can be measured alongside
  the paper's packet-level metrics.

Experiment-facing workloads live in the :data:`WORKLOADS` registry: a
builder takes a :class:`WorkloadContext` and returns a
:class:`WorkloadBuild`.  New workload shapes register here and become
reachable by name (``ExperimentConfig(workload="...")``) with no edits
to the scenario composer, the config, or the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.metrics.collectors import FlowTruth
from repro.sim.packet import FlowKey
from repro.transport.tcp import TcpSender
from repro.transport.udp import CbrSender
from repro.util.registry import Registry
from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.scenario import BuiltScenario
    from repro.sim.topology import Topology
    from repro.util.rng import RngRegistry


@dataclass
class WorkloadContext:
    """What a workload builder gets to place legitimate traffic."""

    topology: "Topology"
    config: "ExperimentConfig"
    rngs: "RngRegistry"


@dataclass
class WorkloadBuild:
    """What a workload builder hands back to the composer."""

    tcp_senders: list[TcpSender] = field(default_factory=list)
    udp_senders: list[CbrSender] = field(default_factory=list)
    flow_truth: dict[int, FlowTruth] = field(default_factory=dict)
    # Called with the finished BuiltScenario — for workloads that need
    # the full object graph (e.g. mice registering in flow_truth live).
    finalize: "Callable[[BuiltScenario], None] | None" = None


#: Workload builders of type ``(WorkloadContext, **workload_args) ->
#: WorkloadBuild`` — the config's ``workload_args`` dict arrives as
#: keyword arguments (``web_mice`` forwards them as
#: :class:`DynamicWorkloadConfig` overrides).
WORKLOADS: "Registry[Callable[..., WorkloadBuild]]" = Registry(
    "workload"
)


@WORKLOADS.register("paper_static", aliases=("static", "paper-static"))
def build_paper_static(ctx: WorkloadContext) -> WorkloadBuild:
    """The paper's workload: n_tcp greedy TCP + n_udp_legit CBR flows,
    round-robin over the ingress subnets, started in [0, spread)."""
    topology, config, rngs = ctx.topology, ctx.config, ctx.rngs
    sim = topology.sim
    victim_host = topology.victim_host
    build = WorkloadBuild()
    src_hosts = [
        topology.hosts[f"src{i}"] for i in range(len(topology.ingress_names))
    ]
    start_rng = rngs.stream("legit", "starts")
    next_port: dict[str, int] = {}

    for i in range(config.n_tcp):
        host = src_hosts[i % len(src_hosts)]
        port = next_port.get(host.name, 1024)
        next_port[host.name] = port + 1
        flow = FlowKey(host.address, victim_host.address, port, config.victim_port)
        sender = TcpSender(
            sim,
            host,
            flow,
            packet_size=config.packet_size,
            ssthresh=config.tcp_max_cwnd,
            max_cwnd=config.tcp_max_cwnd,
        )
        host.bind_port(port, sender)
        start = float(start_rng.random()) * config.legit_start_spread
        sender.start(at=start)
        build.tcp_senders.append(sender)
        build.flow_truth[flow.hashed()] = FlowTruth.TCP_LEGIT

    for i in range(config.n_udp_legit):
        host = src_hosts[(config.n_tcp + i) % len(src_hosts)]
        port = next_port.get(host.name, 1024)
        next_port[host.name] = port + 1
        flow = FlowKey(host.address, victim_host.address, port, config.udp_port)
        sender = CbrSender(
            sim,
            host,
            flow,
            rate_bps=config.legit_rate_bps,
            packet_size=config.packet_size,
            is_attack=False,
            jitter=0.05,
            # Per-flow stream: nothing else draws from it during the
            # run, so departure times batch into series chunks.
            rng=rngs.stream("legit", "udp", i),
            exclusive_rng=True,
        )
        host.bind_port(port, sender)
        start = float(start_rng.random()) * config.legit_start_spread
        sender.start(at=start)
        build.udp_senders.append(sender)
        build.flow_truth[flow.hashed()] = FlowTruth.UDP_LEGIT

    return build


@WORKLOADS.register("web_mice", aliases=("web-mice", "mice"))
def build_web_mice(ctx: WorkloadContext, **overrides) -> WorkloadBuild:
    """The static workload plus Poisson web mice: churning short TCP
    transfers whose completion times surface MAFIC's latency cost.

    ``workload_args`` keys override :class:`DynamicWorkloadConfig`
    fields (``arrival_rate``, ``mean_segments``, ...).
    """
    build = build_paper_static(ctx)
    params = dict(
        tcp_max_cwnd=ctx.config.tcp_max_cwnd,
        packet_size=ctx.config.packet_size,
    )
    params.update(overrides)
    mice = DynamicWorkload(
        DynamicWorkloadConfig(**params),
        rng=ctx.rngs.stream("workload", "mice"),
    )

    def finalize(scenario: "BuiltScenario") -> None:
        mice.install(scenario)
        scenario.mice = mice

    build.finalize = finalize
    return build


@dataclass
class DynamicWorkloadConfig:
    """Shape of the mice population."""

    arrival_rate: float = 10.0  # new transfers per second, domain-wide
    mean_segments: int = 12  # geometric mean transfer size
    max_segments: int = 200  # tail cap
    start_time: float = 0.2
    stop_time: float | None = None  # None = arrivals until the run ends
    tcp_max_cwnd: float = 6.0
    packet_size: int = 1000
    base_port: int = 30000

    def __post_init__(self) -> None:
        check_positive("arrival_rate", self.arrival_rate)
        if self.mean_segments < 1:
            raise ValueError("mean_segments must be >= 1")
        if self.max_segments < self.mean_segments:
            raise ValueError("max_segments must be >= mean_segments")
        check_non_negative("start_time", self.start_time)
        if self.stop_time is not None and self.stop_time < self.start_time:
            raise ValueError("stop_time must be >= start_time")


@dataclass
class TransferRecord:
    """One mouse's lifecycle."""

    flow: FlowKey
    size_segments: int
    started_at: float
    completed_at: float | None = None

    @property
    def completion_time(self) -> float | None:
        """FCT in seconds, or None while in flight / never finished."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class DynamicWorkload:
    """Spawns mice across the domain's source hosts.

    Wire into a built scenario with :meth:`install`; afterwards
    :attr:`records` holds every transfer with its completion time.
    Transfers register themselves in the scenario's ``flow_truth`` as
    well-behaved TCP, so the paper metrics account for them too.
    """

    def __init__(self, config: DynamicWorkloadConfig, rng) -> None:
        self.config = config
        self._rng = rng
        self.records: list[TransferRecord] = []
        self.senders: list[TcpSender] = []
        self._next_port = config.base_port
        self._installed = False
        self._scenario: "BuiltScenario | None" = None

    def install(self, scenario: "BuiltScenario") -> None:
        """Arm Poisson arrivals on the scenario's clock."""
        if self._installed:
            raise RuntimeError("workload already installed")
        self._installed = True
        self._scenario = scenario
        gap = float(self._rng.exponential(1.0 / self.config.arrival_rate))
        scenario.sim.schedule_at(self.config.start_time + gap, self._spawn)

    # ------------------------------------------------------------ internals

    def _draw_size(self) -> int:
        """Geometric transfer sizes: many mice, a heavy-ish tail."""
        p = 1.0 / self.config.mean_segments
        size = 1 + int(self._rng.geometric(p)) - 1
        return max(1, min(self.config.max_segments, size))

    def _spawn(self) -> None:
        scenario = self._scenario
        config = self.config
        now = scenario.sim.now
        if config.stop_time is not None and now >= config.stop_time:
            return
        topology: "Topology" = scenario.topology
        hosts = [
            topology.hosts[f"src{i}"]
            for i in range(len(topology.ingress_names))
        ]
        host = hosts[int(self._rng.integers(len(hosts)))]
        port = self._next_port
        self._next_port += 1
        flow = FlowKey(
            host.address,
            topology.victim_host.address,
            port,
            scenario.config.victim_port,
        )
        size = self._draw_size()
        record = TransferRecord(flow=flow, size_segments=size, started_at=now)
        self.records.append(record)

        def finished(at: float, record=record, host=host, port=port) -> None:
            record.completed_at = at
            host.unbind_port(port)

        sender = TcpSender(
            scenario.sim,
            host,
            flow,
            packet_size=config.packet_size,
            ssthresh=config.tcp_max_cwnd,
            max_cwnd=config.tcp_max_cwnd,
            total_segments=size,
            on_complete=finished,
        )
        host.bind_port(port, sender)
        sender.start()
        self.senders.append(sender)

        scenario.flow_truth[flow.hashed()] = FlowTruth.TCP_LEGIT
        scenario.defense_collector.flow_truth[flow.hashed()] = FlowTruth.TCP_LEGIT

        gap = float(self._rng.exponential(1.0 / config.arrival_rate))
        scenario.sim.schedule(gap, self._spawn)

    # ------------------------------------------------------------- results

    def completed(self) -> list[TransferRecord]:
        """Transfers that finished."""
        return [r for r in self.records if r.completed_at is not None]

    def unfinished(self) -> list[TransferRecord]:
        """Transfers still in flight when the run ended."""
        return [r for r in self.records if r.completed_at is None]

    def completion_times(self) -> list[float]:
        """All FCTs, in seconds."""
        return [r.completion_time for r in self.completed()]

    def mean_fct(self) -> float:
        """Mean FCT over completed transfers (0 when none)."""
        times = self.completion_times()
        return sum(times) / len(times) if times else 0.0

    def fct_percentile(self, q: float) -> float:
        """The q-th percentile FCT (q in [0, 100]; 0 when none)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        times = sorted(self.completion_times())
        if not times:
            return 0.0
        index = min(len(times) - 1, int(round(q / 100.0 * (len(times) - 1))))
        return times[index]
