"""Per-figure reproduction entry points.

Each ``figN*`` function runs the sweep behind one figure of the paper's
evaluation and returns a :class:`FigureResult` whose series carry the
same x axis and legend the published plot uses.  ``scale`` (default 1.0)
shrinks the sweep for quick runs: it scales the number of x points and,
where applicable, the run duration — shapes survive, wall time drops.

Figure inventory (see DESIGN.md section 4):

========  ==========================================================
fig3a     accuracy α vs Vt, series Pd ∈ {70, 80, 90}%
fig3b     accuracy α vs Vt, series R ∈ {100k, 500k, 1M} bps
fig4a     traffic reduction β vs Vt, series Pd
fig4b     victim bandwidth vs time, series Vt ∈ {10, 30, 50}
fig5a     false positive θp vs Vt, series Pd
fig5b     θp vs Γ (TCP share), series Vt ∈ {30, 70, 100}
fig5c     θp vs domain size N, series Γ ∈ {35, 55, 75, 95}%
fig6a     false negative θn vs Vt, series Pd
fig6b     θn vs Γ, series Vt
fig6c     θn vs N, series Γ
fig7      legit drop rate Lr vs Vt, series Pd
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.metrics.timeseries import BandwidthSeries

# The figures' canonical axes.
_VT_AXIS = [10, 30, 50, 70, 90, 110]
_PD_SERIES = [0.90, 0.80, 0.70]
_R_SERIES = [("R=100k", 100e3), ("R=500k", 500e3), ("R=1M", 1e6)]
_GAMMA_AXIS = [0.15, 0.35, 0.55, 0.75, 0.95]
_VT_SERIES = [30, 70, 100]
_N_AXIS = [20, 40, 80, 120, 160]
_GAMMA_SERIES = [0.95, 0.75, 0.55, 0.35]


@dataclass
class FigureResult:
    """One reproduced figure: named series over a shared x axis."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    runs: dict[str, list[ExperimentResult]] = field(default_factory=dict)

    def add_point(
        self, series_name: str, x: float, y: float, run: ExperimentResult | None = None
    ) -> None:
        """Append one (x, y) point to a series."""
        self.series.setdefault(series_name, []).append((x, y))
        if run is not None:
            self.runs.setdefault(series_name, []).append(run)

    def ys(self, series_name: str) -> list[float]:
        """The y values of one series."""
        return [y for _, y in self.series[series_name]]


def figure_from_table(
    figure_id: str,
    title: str,
    x_label: str,
    y_label: str,
    rows: Iterable[tuple[str, float, float]],
) -> FigureResult:
    """Assemble a :class:`FigureResult` from ``(series, x, y)`` rows.

    The store-backed regeneration path: ``campaign figures`` rebuilds
    each figure from summary artifacts through this instead of
    re-simulating, and anything that can tabulate (series, x, y) can
    reuse the figure reporting/export machinery the same way.  Rows
    carry no runs, so the result's ``runs`` dict stays empty.
    """
    figure = FigureResult(
        figure_id=figure_id, title=title, x_label=x_label, y_label=y_label
    )
    for series_name, x, y in rows:
        figure.add_point(series_name, x, y)
    return figure


def _scaled(values: list, scale: float) -> list:
    """Thin a sweep axis for quick runs (always keeps ends)."""
    if scale >= 1.0 or len(values) <= 2:
        return list(values)
    keep = max(2, round(len(values) * scale))
    if keep >= len(values):
        return list(values)
    step = (len(values) - 1) / (keep - 1)
    indices = sorted({round(i * step) for i in range(keep)})
    return [values[i] for i in indices]


def _base(scale: float, **overrides) -> ExperimentConfig:
    # ``scale`` thins the sweep axes only.  Run duration is never scaled:
    # the duration-sensitive metrics (Lr, theta_n) are ratios of a fixed
    # probing cost to the defence-active period, so shortening runs would
    # change the numbers, not just the resolution.
    return ExperimentConfig(**overrides)


def _sweep_vt_by_pd(
    figure_id: str,
    title: str,
    y_label: str,
    metric: Callable[[ExperimentResult], float],
    scale: float,
    seed: int,
    **overrides,
) -> FigureResult:
    """Shared harness for the Vt-axis / Pd-series figures (3a,4a,5a,6a,7)."""
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="Total Traffic Volume (No. of Flows)",
        y_label=y_label,
    )
    for pd in _PD_SERIES:
        name = f"Pd={int(pd * 100)}%"
        for vt in _scaled(_VT_AXIS, scale):
            config = _base(scale, seed=seed, total_flows=int(vt), **overrides)
            config.mafic.drop_probability = pd
            run = run_experiment(config)
            result.add_point(name, vt, metric(run), run)
    return result


# --------------------------------------------------------------- Figure 3


def fig3a(scale: float = 1.0, seed: int = 11) -> FigureResult:
    """Attack-packet dropping accuracy vs traffic volume, by Pd."""
    return _sweep_vt_by_pd(
        "fig3a",
        "Attack packet dropping accuracy under three dropping probabilities",
        "Attacking Packets Dropping Accuracy (%)",
        lambda run: 100.0 * run.summary.accuracy,
        scale,
        seed,
    )


def fig3b(scale: float = 1.0, seed: int = 12) -> FigureResult:
    """Attack-packet dropping accuracy vs traffic volume, by source rate.

    This figure evaluates the *dropping policy* across source rates, not
    the anomaly detector's sensitivity: at 100 kbps per zombie the flood
    adds too little volume for a threshold detector to see, but the
    paper still reports ~99% accuracy.  We therefore model the victim's
    DDoS notification explicitly (``force_activation_at``), exactly the
    "on receiving the notification of DDoS attack from the victim
    router" trigger of Section III.A.
    """
    result = FigureResult(
        figure_id="fig3b",
        title="Attack packet dropping accuracy under three source rates",
        x_label="Total Traffic Volume (No. of Flows)",
        y_label="Attacking Packets Dropping Accuracy (%)",
    )
    for name, rate in _R_SERIES:
        for vt in _scaled(_VT_AXIS, scale):
            config = _base(
                scale, seed=seed, total_flows=int(vt), rate_bps=rate,
                force_activation_at=1.25,
            )
            run = run_experiment(config)
            result.add_point(name, vt, 100.0 * run.summary.accuracy, run)
    return result


# --------------------------------------------------------------- Figure 4


def fig4a(scale: float = 1.0, seed: int = 13) -> FigureResult:
    """Traffic reduction rate vs traffic volume, by Pd."""
    return _sweep_vt_by_pd(
        "fig4a",
        "Traffic reduction rate under three dropping probabilities",
        "Traffic Reduction Rate (%)",
        lambda run: 100.0 * run.summary.traffic_reduction,
        scale,
        seed,
    )


def fig4b(scale: float = 1.0, seed: int = 14) -> FigureResult:
    """Victim-arrival bandwidth over time for Vt in {10, 30, 50}."""
    result = FigureResult(
        figure_id="fig4b",
        title="Flow bandwidth variation while MAFIC engages",
        x_label="Time (second)",
        y_label="Flow Bandwidth (kbps)",
    )
    for vt in [10, 30, 50]:
        name = f"Vt={vt}"
        config = _base(scale, seed=seed, total_flows=vt)
        run = run_experiment(config, series_bin_width=0.05)
        series: BandwidthSeries = run.series
        for t, kbps in zip(series.times, series.total_kbps):
            result.add_point(name, t, kbps)
        result.runs.setdefault(name, []).append(run)
    return result


# --------------------------------------------------------------- Figure 5


def fig5a(scale: float = 1.0, seed: int = 15) -> FigureResult:
    """False positive rate vs traffic volume, by Pd."""
    return _sweep_vt_by_pd(
        "fig5a",
        "False positive rate under three dropping probabilities",
        "False Positive Rate (%)",
        lambda run: 100.0 * run.summary.false_positive_rate,
        scale,
        seed,
    )


def _sweep_gamma_by_vt(
    figure_id: str,
    title: str,
    y_label: str,
    metric: Callable[[ExperimentResult], float],
    scale: float,
    seed: int,
) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="Percentage of TCP Traffic (%)",
        y_label=y_label,
    )
    for vt in _VT_SERIES:
        name = f"Vt={vt}"
        for gamma in _scaled(_GAMMA_AXIS, scale):
            config = _base(
                scale, seed=seed, total_flows=vt, tcp_fraction=float(gamma)
            )
            run = run_experiment(config)
            result.add_point(name, 100.0 * gamma, metric(run), run)
    return result


def fig5b(scale: float = 1.0, seed: int = 16) -> FigureResult:
    """False positive rate vs TCP share, by traffic volume."""
    return _sweep_gamma_by_vt(
        "fig5b",
        "False positive rate vs TCP share",
        "False Positive Rate (%)",
        lambda run: 100.0 * run.summary.false_positive_rate,
        scale,
        seed,
    )


def _sweep_n_by_gamma(
    figure_id: str,
    title: str,
    y_label: str,
    metric: Callable[[ExperimentResult], float],
    scale: float,
    seed: int,
) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="Domain Size (No. of Routers)",
        y_label=y_label,
    )
    for gamma in _GAMMA_SERIES:
        name = f"TCP={int(gamma * 100)}%"
        for n in _scaled(_N_AXIS, scale):
            config = _base(
                scale, seed=seed, n_routers=int(n), tcp_fraction=gamma
            )
            run = run_experiment(config)
            result.add_point(name, n, metric(run), run)
    return result


def fig5c(scale: float = 1.0, seed: int = 17) -> FigureResult:
    """False positive rate vs domain size, by TCP share."""
    return _sweep_n_by_gamma(
        "fig5c",
        "False positive rate vs domain size",
        "False Positive Rate (%)",
        lambda run: 100.0 * run.summary.false_positive_rate,
        scale,
        seed,
    )


# --------------------------------------------------------------- Figure 6


def fig6a(scale: float = 1.0, seed: int = 18) -> FigureResult:
    """False negative rate vs traffic volume, by Pd."""
    return _sweep_vt_by_pd(
        "fig6a",
        "False negative rate under three dropping probabilities",
        "False Negative Rate (%)",
        lambda run: 100.0 * run.summary.false_negative_rate,
        scale,
        seed,
    )


def fig6b(scale: float = 1.0, seed: int = 19) -> FigureResult:
    """False negative rate vs TCP share, by traffic volume."""
    return _sweep_gamma_by_vt(
        "fig6b",
        "False negative rate vs TCP share",
        "False Negative Rate (%)",
        lambda run: 100.0 * run.summary.false_negative_rate,
        scale,
        seed,
    )


def fig6c(scale: float = 1.0, seed: int = 20) -> FigureResult:
    """False negative rate vs domain size, by TCP share."""
    return _sweep_n_by_gamma(
        "fig6c",
        "False negative rate vs domain size",
        "False Negative Rate (%)",
        lambda run: 100.0 * run.summary.false_negative_rate,
        scale,
        seed,
    )


# --------------------------------------------------------------- Figure 7


def fig7(scale: float = 1.0, seed: int = 21) -> FigureResult:
    """Legitimate-packet dropping rate vs traffic volume, by Pd."""
    return _sweep_vt_by_pd(
        "fig7",
        "Legitimate packet dropping rate under three dropping probabilities",
        "Legitimate Packet Dropping Rate (%)",
        lambda run: 100.0 * run.summary.legit_drop_rate,
        scale,
        seed,
    )


ALL_FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig5c": fig5c,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig6c": fig6c,
    "fig7": fig7,
}
