"""ASCII reporting of summaries and reproduced figures."""

from __future__ import annotations

from repro.experiments.figures import FigureResult
from repro.metrics.rates import MetricsSummary


def format_summary(summary: MetricsSummary) -> str:
    """One run's headline rates, paper-style (percent)."""
    pct = summary.as_percent()
    lines = [
        "metric                          value",
        "------------------------------  --------",
        f"accuracy alpha                  {pct['alpha']:7.2f}%",
        f"traffic reduction beta          {pct['beta']:7.2f}%",
        f"false positive theta_p          {pct['theta_p']:8.4f}%",
        f"false negative theta_n          {pct['theta_n']:8.4f}%",
        f"legit drop rate Lr              {pct['Lr']:7.2f}%",
        "",
        f"attack packets examined/dropped {summary.attack_examined}/{summary.attack_dropped}",
        f"well-behaved examined/dropped   {summary.wellbehaved_examined}/{summary.wellbehaved_dropped}",
        f"victim rate before/after (Mbps) "
        f"{summary.victim_rate_before_bps / 1e6:.2f}/{summary.victim_rate_after_bps / 1e6:.2f}",
    ]
    return "\n".join(lines)


def format_figure(figure: FigureResult, precision: int = 3) -> str:
    """A reproduced figure as an aligned table (x column + one per series).

    Matches what a gnuplot data file for the published figure would hold.
    """
    names = list(figure.series)
    if not names:
        return f"{figure.figure_id}: (no data)"
    xs: list[float] = []
    for name in names:
        for x, _ in figure.series[name]:
            if x not in xs:
                xs.append(x)
    xs.sort()
    by_series = {
        name: {x: y for x, y in figure.series[name]} for name in names
    }
    header = f"# {figure.figure_id}: {figure.title}"
    axis = f"# x: {figure.x_label} | y: {figure.y_label}"
    width = max(10, precision + 7)
    head_cells = ["x".rjust(10)] + [name.rjust(width) for name in names]
    rows = [header, axis, "  ".join(head_cells)]
    for x in xs:
        cells = [f"{x:10.3f}"]
        for name in names:
            y = by_series[name].get(x)
            cells.append(
                f"{y:{width}.{precision}f}" if y is not None else " " * width
            )
        rows.append("  ".join(cells))
    return "\n".join(rows)
