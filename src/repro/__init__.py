"""repro — a full reproduction of MAFIC (Chen, Kwok, Hwang; ICDCSW'05).

MAFIC (MAlicious Flow Identification and Cutoff) is an adaptive packet
dropping scheme run at Attack Transit Routers to push back DDoS attacks:
suspicious victim-bound flows are probed by dropping their packets with
probability ``Pd`` while forging duplicate ACKs toward the claimed
source; flows that slow down within ``2 x RTT`` are nice (never dropped
again), flows that do not are cut completely.

Package layout:

- :mod:`repro.core` — the MAFIC algorithm (tables, probing, policies).
- :mod:`repro.sim` — the discrete-event network simulator substrate.
- :mod:`repro.transport` — TCP/CBR agents and sinks.
- :mod:`repro.counting` — LogLog set-union counting pushback.
- :mod:`repro.attacks` — spoofing models, zombies, attack scenarios.
- :mod:`repro.metrics` — the paper's evaluation metrics.
- :mod:`repro.experiments` — config, runner, and per-figure sweeps.

Quickstart::

    from repro.experiments import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(seed=7))
    print(result.summary.as_percent())
"""

from repro.core import MaficAgent, MaficConfig
from repro.experiments import ExperimentConfig, run_experiment

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "MaficAgent",
    "MaficConfig",
    "run_experiment",
    "__version__",
]
