"""``repro.lint`` — the repo's invariant analyzer.

Nine PRs of this codebase accumulated load-bearing invariants that used
to live only in review discipline: the simulation layers must be
wall-clock- and global-RNG-free (golden masters depend on it), every
hot-path ``bus.emit(...)`` must hide behind a falsy bus check (the <2%
observability-overhead gate depends on it), campaign store writes must
be atomic (the chaos suite depends on it), the compiled scheduler core
must remain an API-exact twin of the pure engine (the no-re-record
policy depends on it).  This package enforces them mechanically, at
commit time, from the stdlib :mod:`ast`.

Architecture (mirrors the component registries of ``repro.util``):

* :class:`~repro.lint.analyzer.LintRule` subclasses self-register with
  :func:`~repro.lint.analyzer.register_rule` into the
  :data:`~repro.lint.analyzer.RULES` registry — adding a rule is a
  one-file change under :mod:`repro.lint.rules`.
* :func:`~repro.lint.analyzer.analyze` drives every registered rule
  over a file set, applies inline ``# repro: allow[rule-id]``
  suppressions, and returns a deterministic
  :class:`~repro.lint.analyzer.LintReport`.
* :mod:`repro.lint.baseline` grandfathers findings by content
  fingerprint so the gate (``python -m repro lint --check``) can be
  adopted on an imperfect tree and ratcheted down.

CLI::

    python -m repro lint [--check] [--json] [paths ...]
"""

from repro.lint.analyzer import (
    LintReport,
    LintRule,
    ModuleSource,
    Project,
    RULES,
    analyze,
    register_rule,
)
from repro.lint.findings import Finding

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "ModuleSource",
    "Project",
    "RULES",
    "analyze",
    "register_rule",
]
