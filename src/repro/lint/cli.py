"""``repro lint`` — run the invariant analyzer from the command line.

Modes:

* default — print findings (baselined ones annotated), always exit 0;
  the reporting mode for local exploration.
* ``--check`` — the CI gate: exit 1 if any finding is neither
  suppressed inline nor in the baseline.
* ``--json`` — machine-readable report (findings, suppressed,
  baselined, file count) for tooling.
* ``--write-baseline`` — adjudicate current findings into the baseline
  file (review the diff before committing it; the baseline is meant to
  stay empty).
* ``--list-rules`` — the rule roster with each invariant's rationale.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.analyzer import RULES, analyze, load_rules
from repro.lint.baseline import (
    BASELINE_NAME,
    load_baseline,
    partition,
    write_baseline,
)


def _default_root() -> Path:
    """The repo root when running from a checkout, else the CWD.

    Anchored on the installed package location: ``src/repro`` two
    levels up from this file's parent means the checkout layout.
    """
    package_dir = Path(__file__).resolve().parent.parent
    if package_dir.parent.name == "src":
        return package_dir.parent.parent
    return Path.cwd()


def _default_paths(root: Path) -> list[Path]:
    src = root / "src" / "repro"
    return [src] if src.is_dir() else [root]


def add_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``lint`` subcommand on the main CLI."""
    p = sub.add_parser(
        "lint",
        help="statically check the repo's determinism/atomicity/"
        "twin-parity invariants",
    )
    p.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories (default: the repro package)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="exit nonzero on any non-baselined finding (the CI gate)",
    )
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="machine-readable output")
    p.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE-ID",
        help="run only this rule (repeatable)",
    )
    p.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <repo-root>/{BASELINE_NAME})",
    )
    p.add_argument(
        "--write-baseline", action="store_true",
        help="record the current findings as the new baseline",
    )
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered rules and exit")


def cmd(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()

    root = _default_root()
    paths = [Path(p) for p in args.paths] or _default_paths(root)
    baseline_path = args.baseline or root / BASELINE_NAME

    report = analyze(paths, rules=args.rules, root=root)
    baselined_fps = load_baseline(baseline_path)
    new, tolerated = partition(report, baselined_fps)

    if args.write_baseline:
        write_baseline(baseline_path, report.all_findings)
        print(
            f"wrote {len(report.all_findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    if args.as_json:
        print(json.dumps({
            "files": report.files,
            "findings": [f.to_dict() for f in new],
            "baselined": [f.to_dict() for f in tolerated],
            "suppressed": [f.to_dict() for f in report.suppressed],
        }, indent=2))
    else:
        for finding in new:
            print(finding.render())
        for finding in tolerated:
            print(f"{finding.render()}  (baselined)")
        summary = (
            f"{report.files} file(s): {len(new)} finding(s), "
            f"{len(tolerated)} baselined, "
            f"{len(report.suppressed)} suppressed inline"
        )
        print(summary, file=sys.stderr)

    if args.check and new:
        print(
            f"lint --check: {len(new)} non-baselined finding(s); fix, "
            "add `# repro: allow[rule-id] <reason>`, or (last resort) "
            "re-baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def _list_rules() -> int:
    load_rules()
    for name in RULES.names():
        rule = RULES.get(name)
        print(f"{name:<22} {rule.title}")
        if rule.rationale:
            print(f"{'':<22} why: {rule.rationale}")
        if rule.scope:
            print(f"{'':<22} scope: {', '.join(rule.scope)}")
    return 0
