"""The finding record every lint rule produces.

A :class:`Finding` is deliberately plain: rule id, file, line, message,
and the stripped source line it anchors to.  The *fingerprint* hashes
the stable parts (rule, path, snippet) and **not** the line number, so a
baselined finding survives unrelated edits above it — the same content
addressing the campaign store uses for run artifacts, applied to lint
debt.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # POSIX-style, repo-relative where possible
    line: int
    message: str
    snippet: str = ""  # the offending source line, stripped

    #: Ordering key findings sort by: file, then position, then rule.
    sort_key: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sort_key", (self.path, self.line, self.rule, self.message)
        )

    @property
    def fingerprint(self) -> str:
        """Content hash used by the baseline (line-number independent)."""
        basis = "\x1f".join((self.rule, self.path, self.snippet.strip()))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON payload for ``lint --json`` and the baseline file."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One human-readable ``path:line: [rule] message`` line."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
