"""Small AST utilities shared by the rules."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    The canonical spelling rules compare guard expressions with: two
    occurrences of ``self.bus`` produce the same string, while anything
    involving calls or subscripts (not a stable l-value) returns None.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's target (``np.random.default_rng``)."""
    return dotted_name(node.func)


def truthy_operands(test: ast.expr) -> list[str]:
    """Dotted names asserted *truthy* by an ``if`` test.

    ``bus`` -> [bus]; ``bus is not None and bus`` -> [bus]; nested
    ``and`` chains recurse.  ``bus is not None`` alone contributes
    nothing — a NullSink is not None but must still short-circuit the
    emit, so identity checks don't count as guards.
    """
    names: list[str] = []
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            names.extend(truthy_operands(value))
        return names
    name = dotted_name(test)
    if name is not None:
        names.append(name)
    return names


def falsy_operands(test: ast.expr) -> list[str]:
    """Dotted names asserted *falsy* by an ``if`` test (guard clauses).

    ``not bus`` -> [bus]; ``bus is None or not bus`` -> [bus] (the
    ``not`` operand is what counts).  Or-chains recurse: any branch
    taking the early exit still implies nothing, so only explicit
    ``not <name>`` operands are collected.
    """
    names: list[str] = []
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        for value in test.values:
            names.extend(falsy_operands(value))
        return names
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        name = dotted_name(test.operand)
        if name is not None:
            names.append(name)
    return names


def ends_control_flow(body: list[ast.stmt]) -> bool:
    """Whether a statement list unconditionally leaves the function."""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def decorator_names(node: ast.ClassDef | ast.FunctionDef) -> list[str]:
    """Dotted names of decorators (calls resolve to their callee)."""
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name is not None:
            names.append(name)
    return names


def has_slots(node: ast.ClassDef) -> bool:
    """Whether a class declares ``__slots__`` (directly or via
    ``@dataclass(slots=True)``)."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name = dotted_name(dec.func)
        if name is not None and name.split(".")[-1] == "dataclass":
            for kw in dec.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False
