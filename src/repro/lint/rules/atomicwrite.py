"""Rule ``atomic-write``: campaign-store writes go through the atomic
helpers.

The fault-tolerance contract of the campaign layer — chaos tests,
lease takeover, concurrent same-cell writers, resume-to-byte-identical
— rests on every durable file appearing *atomically*: write to a
``tempfile.mkstemp`` sibling, ``fsync``, then ``os.replace`` (or a
single ``O_APPEND`` write for the index).  A bare ``open(path, "w")``
under :mod:`repro.campaign` reintroduces torn files that only surface
as flaky chaos runs.

Flagged: built-in ``open``/``gzip.open``/``io.open`` in any writing
mode (``w``/``a``/``x``/``+``, or a non-literal mode the rule cannot
prove safe), and ``Path.write_text``/``write_bytes``.  Not flagged:
read-mode opens, and ``os.fdopen`` — a file object over an fd is
already downstream of ``os.open``/``mkstemp``, i.e. inside one of the
blessed helpers.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.analyzer import LintRule, ModuleSource, register_rule
from repro.lint.asthelpers import call_name
from repro.lint.findings import Finding

_OPENERS = frozenset({"open", "io.open", "gzip.open", "bz2.open", "lzma.open"})
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _write_mode(call: ast.Call) -> str | None:
    """The call's mode string if it implies writing, else ``None``.

    A non-literal mode returns ``"?"`` — the rule flags what it cannot
    prove read-only, since a silent miss here is a torn artifact later.
    """
    mode_node: ast.expr | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return None  # defaults to "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        mode = mode_node.value
        if any(ch in mode for ch in "wax+"):
            return mode
        return None
    return "?"


@register_rule
class AtomicWriteRule(LintRule):
    id = "atomic-write"
    title = "campaign files are written via mkstemp+fsync+os.replace only"
    rationale = (
        "chaos/resume correctness requires artifacts to appear "
        "atomically; a bare open(path, 'w') can tear under a crash or "
        "a concurrent same-cell writer"
    )
    scope = ("repro.campaign",)

    def check_module(self, src: ModuleSource) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _OPENERS:
                mode = _write_mode(node)
                if mode is not None:
                    shown = (
                        "a non-literal mode" if mode == "?"
                        else f"mode {mode!r}"
                    )
                    findings.append(src.finding(
                        self.id, node,
                        f"{name}(...) with {shown} bypasses the atomic "
                        "write helpers (tempfile.mkstemp + fsync + "
                        "os.replace); route through CampaignStore",
                    ))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITE_METHODS
            ):
                findings.append(src.finding(
                    self.id, node,
                    f".{node.func.attr}(...) writes in place; campaign "
                    "files must appear atomically (mkstemp + fsync + "
                    "os.replace)",
                ))
        return findings
