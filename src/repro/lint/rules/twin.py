"""Rule ``twin-parity``: the compiled core exposes the pure surface.

``repro.sim._corec`` is a bit-exact C twin of the pure-Python engine;
the dispatch layer swaps one for the other behind ``REPRO_ENGINE``.
That substitution is only sound while the *surfaces* agree — a method
added to :class:`repro.sim.engine.Simulator` but not to ``sim_methods``
(or vice versa) produces code that works on one engine build and
AttributeErrors on the other, and the engine-matrix CI only catches it
where a test happens to exercise the new name.

This rule diffs the two surfaces statically, per twin class
(``Event``, ``SeriesEvent``, ``Simulator``):

* method names — C ``PyMethodDef`` tables (with ``tp_base`` chains
  unioned, as Python inheritance would) against public ``def``s;
* attribute names — C ``PyMemberDef`` + ``PyGetSetDef`` against public
  slots, properties, class attributes, and ``self.x`` assignments in
  ``__init__``;
* calling conventions — ``METH_NOARGS`` methods must be zero-argument
  in Python; where the C side parses keywords through a ``kwlist``,
  the names and order must equal the pure signature (keyword-argument
  call sites are the first thing to break on drift);
* construction — ``tp_init``'s kwlist against pure ``__init__``.

The parsing helpers (:func:`parse_c_surface`, :func:`parse_pure_surface`,
:func:`compare_surfaces`) are pure functions over source text so the
self-test suite can seed mutations (rename a C method, drop a kwlist
entry) and prove each drift class is caught.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.analyzer import LintRule, Project, register_rule
from repro.lint.findings import Finding

#: pure-class name -> the C PyTypeObject variable implementing it.
TWIN_CLASSES: dict[str, str] = {
    "Event": "Event_Type",
    "SeriesEvent": "SeriesEvent_Type",
    "Simulator": "Simulator_Type",
}

_TABLE_RE = re.compile(
    r"static\s+(PyMethodDef|PyMemberDef|PyGetSetDef)\s+(\w+)\[\]\s*=\s*\{"
    r"(.*?)\n\};",
    re.DOTALL,
)
_TYPE_RE = re.compile(
    r"static\s+PyTypeObject\s+(\w+)\s*=\s*\{(.*?)\n\};", re.DOTALL
)
_METHOD_ENTRY_RE = re.compile(
    r"\{\s*\"(\w+)\"\s*,\s*(?:\(PyCFunction\))?\s*(\w+)\s*,"
    r"\s*([A-Z_|\s]+?)\s*,",
    re.DOTALL,
)
_NAME_ENTRY_RE = re.compile(r"\{\s*\"(\w+)\"\s*,")
_SLOT_RE = re.compile(r"\.tp_(\w+)\s*=\s*&?(?:\((?:\w+)\))?\s*\"?([\w.]+)\"?")
_KWLIST_RE = re.compile(r"static\s+char\s*\*kwlist\[\]\s*=\s*\{([^}]*)\};")
_CFUNC_DEF_RE = re.compile(r"^(\w+)\(PyObject\b", re.MULTILINE)


@dataclass
class ClassSurface:
    """One class's externally visible surface, from either language."""

    methods: dict[str, tuple[str, ...] | None] = field(default_factory=dict)
    #: method name -> kwlist/parameter names, or None when unknown
    #: (C METH_VARARGS without a kwlist; nothing to compare).
    attrs: set[str] = field(default_factory=set)
    noargs: set[str] = field(default_factory=set)
    init_params: tuple[str, ...] | None = None


def parse_c_surface(c_text: str) -> dict[str, ClassSurface]:
    """Extract per-twin-class surfaces from ``_corec.c`` source text."""
    tables: dict[str, list] = {}
    table_kinds: dict[str, str] = {}
    for kind, name, body in _TABLE_RE.findall(c_text):
        table_kinds[name] = kind
        if kind == "PyMethodDef":
            tables[name] = _METHOD_ENTRY_RE.findall(body)
        else:
            tables[name] = _NAME_ENTRY_RE.findall(body)

    # C function name -> kwlist names, matched to the enclosing function
    # definition (the last one opening before the kwlist declaration).
    kwlists: dict[str, tuple[str, ...]] = {}
    for match in _KWLIST_RE.finditer(c_text):
        names = tuple(re.findall(r"\"(\w+)\"", match.group(1)))
        owner = None
        for fn in _CFUNC_DEF_RE.finditer(c_text, 0, match.start()):
            owner = fn.group(1)
        if owner is not None:
            kwlists[owner] = names

    types: dict[str, dict[str, str]] = {}
    for var, body in _TYPE_RE.findall(c_text):
        types[var] = dict(_SLOT_RE.findall(body))

    def build(var: str, seen: frozenset[str] = frozenset()) -> ClassSurface:
        surface = ClassSurface()
        slots = types.get(var, {})
        base = slots.get("base")
        if base and base in types and base not in seen:
            parent = build(base, seen | {var})
            surface.methods.update(parent.methods)
            surface.attrs.update(parent.attrs)
            surface.noargs.update(parent.noargs)
        for table_slot, attr in (("members", "attrs"), ("getset", "attrs")):
            table = slots.get(table_slot)
            if table in tables:
                surface.attrs.update(tables[table])
        methods_table = slots.get("methods")
        if methods_table in tables:
            for name, cfunc, flags in tables[methods_table]:
                surface.methods[name] = kwlists.get(cfunc)
                if "METH_NOARGS" in flags:
                    surface.noargs.add(name)
                else:
                    surface.noargs.discard(name)
        init_fn = slots.get("init")
        if init_fn:
            surface.init_params = kwlists.get(init_fn)
        return surface

    return {
        cls: build(var)
        for cls, var in TWIN_CLASSES.items()
        if var in types
    }


def parse_pure_surface(py_text: str) -> dict[str, ClassSurface]:
    """Extract per-twin-class public surfaces from ``engine.py`` text."""
    tree = ast.parse(py_text)
    class_nodes = {
        node.name: node for node in tree.body
        if isinstance(node, ast.ClassDef)
    }

    def public(name: str) -> bool:
        return not name.startswith("_")

    def own_surface(node: ast.ClassDef) -> ClassSurface:
        surface = ClassSurface()
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                params = tuple(
                    a.arg for a in stmt.args.posonlyargs + stmt.args.args
                )[1:]  # drop self
                decorators = {
                    d.id for d in stmt.decorator_list
                    if isinstance(d, ast.Name)
                }
                if stmt.name == "__init__":
                    surface.init_params = params
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Attribute)
                            and isinstance(sub.ctx, ast.Store)
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id == "self"
                            and public(sub.attr)
                        ):
                            surface.attrs.add(sub.attr)
                elif public(stmt.name):
                    if "property" in decorators:
                        surface.attrs.add(stmt.name)
                    else:
                        surface.methods[stmt.name] = params
                        if not params:
                            surface.noargs.add(stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__slots__":
                        for sub in ast.walk(stmt.value or ast.Tuple([], None)):
                            if (
                                isinstance(sub, ast.Constant)
                                and isinstance(sub.value, str)
                                and public(sub.value)
                            ):
                                surface.attrs.add(sub.value)
                    elif public(target.id):
                        surface.attrs.add(target.id)
        return surface

    def build(name: str, seen: frozenset[str] = frozenset()) -> ClassSurface:
        node = class_nodes[name]
        surface = ClassSurface()
        for base in node.bases:
            if (
                isinstance(base, ast.Name)
                and base.id in class_nodes
                and base.id not in seen
            ):
                parent = build(base.id, seen | {name})
                surface.methods.update(parent.methods)
                surface.attrs.update(parent.attrs)
                surface.noargs.update(parent.noargs)
        own = own_surface(node)
        for mname, params in own.methods.items():
            surface.methods[mname] = params
            if mname in own.noargs:
                surface.noargs.add(mname)
            else:
                surface.noargs.discard(mname)
        surface.attrs.update(own.attrs)
        if own.init_params is not None:
            surface.init_params = own.init_params
        return surface

    return {
        cls: build(cls) for cls in TWIN_CLASSES if cls in class_nodes
    }


def compare_surfaces(
    c_surface: dict[str, ClassSurface],
    pure_surface: dict[str, ClassSurface],
) -> list[str]:
    """Human-readable drift descriptions (empty when the twins agree)."""
    drifts: list[str] = []
    for cls in TWIN_CLASSES:
        c = c_surface.get(cls)
        pure = pure_surface.get(cls)
        if c is None or pure is None:
            if c is not pure:
                side = "compiled" if c is None else "pure"
                drifts.append(f"{cls}: missing from the {side} engine")
            continue
        only_pure = sorted(set(pure.methods) - set(c.methods))
        only_c = sorted(set(c.methods) - set(pure.methods))
        if only_pure:
            drifts.append(
                f"{cls}: methods only in the pure engine: "
                f"{', '.join(only_pure)}"
            )
        if only_c:
            drifts.append(
                f"{cls}: methods only in the compiled engine: "
                f"{', '.join(only_c)}"
            )
        attr_pure = sorted(pure.attrs - c.attrs)
        attr_c = sorted(c.attrs - pure.attrs)
        if attr_pure:
            drifts.append(
                f"{cls}: attributes only in the pure engine: "
                f"{', '.join(attr_pure)}"
            )
        if attr_c:
            drifts.append(
                f"{cls}: attributes only in the compiled engine: "
                f"{', '.join(attr_c)}"
            )
        for name in sorted(set(c.methods) & set(pure.methods)):
            pure_params = pure.methods[name] or ()
            if name in c.noargs and pure_params:
                drifts.append(
                    f"{cls}.{name}: METH_NOARGS in C but takes "
                    f"({', '.join(pure_params)}) in Python"
                )
            c_kwlist = c.methods[name]
            if c_kwlist is not None and c_kwlist != pure_params:
                drifts.append(
                    f"{cls}.{name}: C kwlist {list(c_kwlist)} != pure "
                    f"signature {list(pure_params)}"
                )
        if c.init_params is not None and pure.init_params is not None:
            if c.init_params != tuple(pure.init_params):
                drifts.append(
                    f"{cls}.__init__: C kwlist {list(c.init_params)} != "
                    f"pure signature {list(pure.init_params)}"
                )
    return drifts


@register_rule
class TwinParityRule(LintRule):
    id = "twin-parity"
    title = "_corec.c's exposed surface matches the pure engine"
    rationale = (
        "REPRO_ENGINE swaps the compiled core in transparently; surface "
        "drift means code that works on one engine build and "
        "AttributeErrors on the other"
    )
    scope = ()  # purely cross-file
    project_wide = True

    def check_project(self, project: Project) -> Iterable[Finding]:
        engine = project.source_for("repro.sim.engine")
        if engine is None:
            return ()
        c_path = engine.path.parent / "_corec.c"
        if not c_path.is_file():
            return ()
        c_text = c_path.read_text(encoding="utf-8")
        drifts = compare_surfaces(
            parse_c_surface(c_text), parse_pure_surface(engine.text)
        )
        return [
            engine.finding(
                self.id, 1, f"{drift} (see {c_path.name})"
            )
            for drift in drifts
        ]
