"""Rule ``event-kind-registry``: every metric event is declared.

:data:`repro.obs.events.EVENT_TYPES` is the contract between producers
and every downstream consumer — flight-recorder replay, ``repro serve``
demux, ``campaign tail`` — because :func:`event_from_dict` silently
returns ``None`` for kinds it does not know.  An event class that is
defined (anywhere) but never entered into ``EVENT_TYPES`` therefore
*emits fine and replays as nothing*: the least visible failure mode in
the pipeline.  This rule closes the loop statically:

* inside ``repro.obs.events``: every ``MetricEvent`` subclass carries a
  ``kind`` string literal, appears in the ``EVENT_TYPES`` construction,
  and no two classes share a kind;
* everywhere else under ``repro``: emitted event constructors
  (``bus.emit(Cls(...))``) resolve to classes declared in
  ``repro.obs.events`` — locally defined event classes are flagged,
  since a dict comprehension in another module cannot register them.

When ``repro.obs.events`` is not part of the analyzed file set (single
-file runs, synthetic trees) the rule skips rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.analyzer import LintRule, Project, ModuleSource, register_rule
from repro.lint.findings import Finding

EVENTS_MODULE = "repro.obs.events"


def declared_events(src: ModuleSource) -> tuple[dict[str, str], set[str]]:
    """(event class name -> kind literal, names in EVENT_TYPES) from the
    parsed ``repro.obs.events`` source.

    Event classes are found structurally: any class whose base chain
    (within the module) reaches ``MetricEvent``.
    """
    bases: dict[str, list[str]] = {}
    kinds: dict[str, str] = {}
    registered: set[str] = set()
    for node in src.tree.body:
        if isinstance(node, ast.ClassDef):
            bases[node.name] = [
                b.id for b in node.bases if isinstance(b, ast.Name)
            ]
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "kind"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    kinds[node.name] = stmt.value.value
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if "EVENT_TYPES" in names and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id in bases:
                        registered.add(sub.id)

    def is_event(name: str, seen: frozenset[str] = frozenset()) -> bool:
        if name == "MetricEvent":
            return True
        if name in seen or name not in bases:
            return False
        return any(
            is_event(base, seen | {name}) for base in bases[name]
        )

    event_kinds = {
        name: kinds.get(name, "")
        for name in bases
        if name != "MetricEvent" and is_event(name)
    }
    return event_kinds, registered


@register_rule
class EventKindRegistryRule(LintRule):
    id = "event-kind-registry"
    title = "every emitted event class is declared in EVENT_TYPES"
    rationale = (
        "event_from_dict drops unknown kinds silently, so an undeclared "
        "event records fine and replays as nothing — recordings, serve "
        "demux, and campaign tail all depend on the registry being total"
    )
    scope = ()  # purely cross-file
    project_wide = True

    def check_project(self, project: Project) -> Iterable[Finding]:
        events_src = project.source_for(EVENTS_MODULE)
        if events_src is None:
            return ()
        findings = list(self._check_registry(events_src))
        declared, _ = declared_events(events_src)
        for src in project.sources:
            module = src.module or ""
            if not module.startswith("repro") or module == EVENTS_MODULE:
                continue
            findings.extend(self._check_emits(src, set(declared)))
        return findings

    def _check_registry(self, src: ModuleSource) -> Iterable[Finding]:
        declared, registered = declared_events(src)
        by_kind: dict[str, str] = {}
        for name in sorted(declared):
            kind = declared[name]
            node = next(
                n for n in src.tree.body
                if isinstance(n, ast.ClassDef) and n.name == name
            )
            if not kind:
                yield src.finding(
                    self.id, node,
                    f"event class {name} has no class-level `kind` "
                    "string literal",
                )
                continue
            if kind in by_kind:
                yield src.finding(
                    self.id, node,
                    f"event class {name} reuses kind {kind!r} "
                    f"(already taken by {by_kind[kind]}); demux would "
                    "deserialize both as one type",
                )
            by_kind.setdefault(kind, name)
            if name not in registered:
                yield src.finding(
                    self.id, node,
                    f"event class {name} (kind {kind!r}) is missing "
                    "from EVENT_TYPES; event_from_dict will drop it",
                )

    def _check_emits(
        self, src: ModuleSource, declared: set[str]
    ) -> Iterable[Finding]:
        local_classes = {
            node.name for node in ast.walk(src.tree)
            if isinstance(node, ast.ClassDef)
        }
        imported_events: set[str] = set()
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == EVENTS_MODULE
            ):
                imported_events.update(
                    alias.asname or alias.name for alias in node.names
                )
        for node in ast.walk(src.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Call)
                and isinstance(node.args[0].func, ast.Name)
            ):
                continue
            cls = node.args[0].func.id
            if cls in imported_events and cls not in declared:
                yield src.finding(
                    self.id, node,
                    f"emits {cls}(...), which {EVENTS_MODULE} does not "
                    "define as an event class",
                )
            elif cls in local_classes and cls not in imported_events:
                yield src.finding(
                    self.id, node,
                    f"emits locally defined {cls}(...); event classes "
                    f"must live in {EVENTS_MODULE} so EVENT_TYPES can "
                    "register them",
                )
