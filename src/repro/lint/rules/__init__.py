"""The bundled invariant rules.

Importing this package registers every rule in
:data:`repro.lint.analyzer.RULES`.  Each module holds one rule (plus
its helpers); adding a rule is: write the module, import it here.
"""

from repro.lint.rules import (  # noqa: F401  (import-for-side-effect)
    atomicwrite,
    busguard,
    events,
    slots,
    twin,
    wallclock,
)
