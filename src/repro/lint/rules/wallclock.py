"""Rule ``no-wallclock-in-sim``: the sim layers own no wall clock.

Simulation determinism is the repo's foundational contract: the same
seed must produce bit-identical artifacts on any host, which is what
golden masters, campaign resume, and ``campaign diff`` all stand on.
Wall-clock reads (``time.time``, ``datetime.now``) and *global* RNG
draws (``random.random``, ``np.random.rand``) smuggle host state into
that computation.  Seeded, locally constructed generators
(``np.random.default_rng(seed)``, ``random.Random(seed)``) stay legal —
the rule polices ambient state, not randomness itself.

Timing that intentionally reads the wall clock (benchmark harnesses,
campaign lease heartbeats) lives outside the scoped packages, so no
allowlist gymnastics are needed; anything unusual inside the scope
takes an inline ``# repro: allow[no-wallclock-in-sim]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.analyzer import LintRule, ModuleSource, register_rule
from repro.lint.findings import Finding

#: time-module attributes that read (or block on) the host clock.
CLOCK_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime", "ctime", "asctime", "strftime", "sleep",
})

#: datetime-class constructors that capture "now".
DATETIME_NOW_ATTRS = frozenset({"now", "utcnow", "today"})

#: stdlib-random names that are *not* ambient state (seeded locals).
RANDOM_ALLOWED = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

#: np.random names that construct seeded generators (legal) rather than
#: draw from the hidden global RandomState (illegal).
NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
})


@register_rule
class NoWallclockRule(LintRule):
    id = "no-wallclock-in-sim"
    title = "sim/defense layers must not read the wall clock or global RNG"
    rationale = (
        "golden masters and campaign resume require runs to be a pure "
        "function of (config, seed); ambient time/RNG breaks that silently"
    )
    scope = (
        "repro.sim", "repro.core", "repro.attacks", "repro.transport",
        "repro.metrics", "repro.counting",
    )

    def check_module(self, src: ModuleSource) -> Iterable[Finding]:
        time_mods: set[str] = set()
        datetime_mods: set[str] = set()
        datetime_classes: set[str] = set()
        random_mods: set[str] = set()
        np_random_mods: set[str] = set()
        numpy_mods: set[str] = set()
        findings: list[Finding] = []

        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        time_mods.add(bound)
                    elif alias.name == "datetime":
                        datetime_mods.add(bound)
                    elif alias.name == "random":
                        random_mods.add(bound)
                    elif alias.name == "numpy":
                        numpy_mods.add(bound)
                    elif alias.name == "numpy.random":
                        np_random_mods.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in CLOCK_ATTRS:
                            findings.append(src.finding(
                                self.id, node,
                                f"imports time.{alias.name} — wall-clock "
                                "reads are forbidden in the sim layers",
                            ))
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_classes.add(alias.asname or alias.name)
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name not in RANDOM_ALLOWED:
                            findings.append(src.finding(
                                self.id, node,
                                f"imports random.{alias.name} — the global "
                                "random module is host state; use a seeded "
                                "np.random.default_rng/random.Random",
                            ))
                elif node.module in ("numpy.random", "numpy.random.mtrand"):
                    for alias in node.names:
                        if alias.name not in NP_RANDOM_ALLOWED:
                            findings.append(src.finding(
                                self.id, node,
                                f"imports numpy.random.{alias.name} — "
                                "global-state draw; use default_rng(seed)",
                            ))

        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if isinstance(value, ast.Name):
                base = value.id
                if base in time_mods and node.attr in CLOCK_ATTRS:
                    findings.append(src.finding(
                        self.id, node,
                        f"{base}.{node.attr} reads the host clock; "
                        "simulation time comes from sim.now",
                    ))
                elif base in datetime_classes and (
                    node.attr in DATETIME_NOW_ATTRS
                ):
                    findings.append(src.finding(
                        self.id, node,
                        f"{base}.{node.attr} captures wall-clock time",
                    ))
                elif base in random_mods and (
                    node.attr not in RANDOM_ALLOWED
                ):
                    findings.append(src.finding(
                        self.id, node,
                        f"{base}.{node.attr} draws from the global random "
                        "module; use a seeded generator",
                    ))
                elif base in np_random_mods and (
                    node.attr not in NP_RANDOM_ALLOWED
                ):
                    findings.append(src.finding(
                        self.id, node,
                        f"{base}.{node.attr} draws from numpy's hidden "
                        "global RandomState; use default_rng(seed)",
                    ))
            elif isinstance(value, ast.Attribute) and isinstance(
                value.value, ast.Name
            ):
                # np.random.<fn> / datetime.datetime.now chains.
                root, mid = value.value.id, value.attr
                if (
                    root in numpy_mods
                    and mid == "random"
                    and node.attr not in NP_RANDOM_ALLOWED
                ):
                    findings.append(src.finding(
                        self.id, node,
                        f"{root}.random.{node.attr} draws from numpy's "
                        "hidden global RandomState; use default_rng(seed)",
                    ))
                elif (
                    root in datetime_mods
                    and mid in ("datetime", "date")
                    and node.attr in DATETIME_NOW_ATTRS
                ):
                    findings.append(src.finding(
                        self.id, node,
                        f"{root}.{mid}.{node.attr} captures wall-clock time",
                    ))
        return findings
