"""Rule ``bus-guard``: hot-path emits hide behind a falsy bus check.

The observability contract since the sink layer landed: the event bus
is *falsy until subscribed*, and every producer on the per-packet hot
path tests that before constructing an event —

    if bus:
        bus.emit(VictimArrival(now, size, is_attack))

so an unobserved run pays one pointer test per site and never allocates
an event.  The <2% idle-overhead benchmark gate assumes this shape; one
unguarded ``bus.emit(Event(...))`` on the packet path allocates per
packet and erodes the budget without failing any functional test.

Accepted guard shapes, both checked lexically:

* the emit sits in the body of an ``if`` whose test asserts the same
  bus expression truthy (bare ``if bus:`` or an ``and``-conjunct);
* the enclosing function opens with a guard clause
  ``if not bus: return`` (before the emit, in the function's direct
  body) — the early-exit idiom for multi-emit publishers.

Call-boundary guards ("my caller checked") are invisible to a lexical
analysis and must carry an inline ``# repro: allow[bus-guard]`` naming
the caller — which is exactly the documentation they always needed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.analyzer import LintRule, ModuleSource, register_rule
from repro.lint.asthelpers import (
    dotted_name,
    ends_control_flow,
    falsy_operands,
    truthy_operands,
)
from repro.lint.findings import Finding


def _is_bus_expr(name: str | None) -> bool:
    """Whether a dotted name plausibly denotes a metric bus/sink."""
    if name is None:
        return False
    leaf = name.split(".")[-1]
    return leaf == "bus" or leaf.endswith("_bus")


@register_rule
class BusGuardRule(LintRule):
    id = "bus-guard"
    title = "hot-path bus.emit must be dominated by a falsy bus check"
    rationale = (
        "the bus is falsy until subscribed; guarding the emit keeps the "
        "unobserved per-packet path to one pointer test and zero "
        "allocations (the BENCH_obs <2% overhead gate)"
    )
    scope = (
        "repro.sim", "repro.core", "repro.attacks", "repro.transport",
        "repro.metrics", "repro.counting",
    )

    def check_module(self, src: ModuleSource) -> Iterable[Finding]:
        parents = src.parents()
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
            ):
                continue
            bus = dotted_name(node.func.value)
            if not _is_bus_expr(bus):
                continue
            if not self._guarded(node, bus, parents):
                findings.append(src.finding(
                    self.id, node,
                    f"{bus}.emit(...) is not dominated by a falsy "
                    f"`if {bus}:` check (or an `if not {bus}: return` "
                    "guard clause)",
                ))
        return findings

    def _guarded(
        self,
        node: ast.AST,
        bus: str,
        parents: dict[ast.AST, tuple[ast.AST, str]],
    ) -> bool:
        # Walk ancestors: an `if <bus-truthy>:` whose *body* contains the
        # emit guards it; landing in the orelse does not.
        child: ast.AST = node
        func: ast.AST | None = None
        while child in parents:
            parent, fieldname = parents[child]
            if isinstance(parent, ast.If) and fieldname == "body":
                if bus in truthy_operands(parent.test):
                    return True
            if isinstance(parent, ast.IfExp) and fieldname == "body":
                if bus in truthy_operands(parent.test):
                    return True
            if func is None and isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                func = parent
            child = parent
        # Guard clause: `if not bus: return` earlier in the enclosing
        # function's direct body (direct body only — that is the one
        # placement that lexically dominates everything after it).
        if func is not None:
            emit_line = getattr(node, "lineno", 0)
            for stmt in func.body:
                if stmt.lineno >= emit_line:
                    break
                if (
                    isinstance(stmt, ast.If)
                    and ends_control_flow(stmt.body)
                    and bus in falsy_operands(stmt.test)
                ):
                    return True
        return False
