"""Rule ``slots-on-hotpath``: per-packet classes stay slotted.

The engine allocates one :class:`Packet` per generated packet and one
:class:`Event` handle per scheduled callback — millions per campaign
cell.  ``__slots__`` on those classes is worth ~30-40% of their memory
and a measurable allocation-rate win, and it is exactly the kind of
property that vanishes silently: drop the declaration during a
refactor and every test still passes, only the perf-smoke gate drifts.

The roster below names the classes the benchmarks were tuned around.
Additionally, every event dataclass in ``repro.obs.events`` must be
declared ``@dataclass(slots=True)`` — events are allocated per packet
whenever a sink is attached.

A class on the roster that no longer exists is also a finding: the
roster is part of the invariant, and a rename must update it (or the
class genuinely lost its hot-path role and the roster entry goes).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.analyzer import LintRule, ModuleSource, register_rule
from repro.lint.asthelpers import has_slots
from repro.lint.findings import Finding

#: module -> class names that must declare ``__slots__``.
HOT_CLASSES: dict[str, tuple[str, ...]] = {
    "repro.sim.packet": ("FlowKey", "Packet", "_PacketPool"),
    "repro.sim.engine": (
        "Event", "_PooledEvent", "SeriesEvent", "_HeapQueue",
        "_CalendarQueue",
    ),
    "repro.obs.bus": ("_Subscription",),
}


@register_rule
class SlotsOnHotpathRule(LintRule):
    id = "slots-on-hotpath"
    title = "per-packet/per-event classes declare __slots__"
    rationale = (
        "packets and event handles are allocated millions of times per "
        "cell; losing __slots__ regresses memory and allocation rate "
        "without failing any functional test"
    )
    scope = tuple(HOT_CLASSES) + ("repro.obs.events",)

    def check_module(self, src: ModuleSource) -> Iterable[Finding]:
        classes = {
            node.name: node
            for node in ast.walk(src.tree)
            if isinstance(node, ast.ClassDef)
        }
        findings: list[Finding] = []
        for name in HOT_CLASSES.get(src.module or "", ()):
            node = classes.get(name)
            if node is None:
                findings.append(src.finding(
                    self.id, 1,
                    f"hot-path class {name} not found in {src.module}; "
                    "renamed classes must update the slots-on-hotpath "
                    "roster (repro/lint/rules/slots.py)",
                ))
            elif not has_slots(node):
                findings.append(src.finding(
                    self.id, node,
                    f"hot-path class {name} does not declare __slots__ "
                    "(directly or via @dataclass(slots=True))",
                ))
        if src.module == "repro.obs.events":
            for name, node in classes.items():
                declares_kind = any(
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "kind"
                        for t in stmt.targets
                    )
                    for stmt in node.body
                )
                if declares_kind and not has_slots(node):
                    findings.append(src.finding(
                        self.id, node,
                        f"event class {name} must be "
                        "@dataclass(slots=True); events are allocated "
                        "per packet when a sink is attached",
                    ))
        return findings
