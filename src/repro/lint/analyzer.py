"""Rule registry, source model, and the analysis driver.

The moving parts:

* :data:`RULES` — a :class:`repro.util.registry.Registry` of
  :class:`LintRule` subclasses; :func:`register_rule` is the decorator
  rules self-register with (exactly the pattern the topology/workload/
  attack/defense registries established).
* :class:`ModuleSource` — one parsed Python file: path, derived module
  name, AST, and the inline ``# repro: allow[rule-id]`` suppressions.
* :class:`Project` — the whole analyzed file set plus the repo root,
  for rules that cross files (twin-parity, event-kind-registry).
* :func:`analyze` — run every rule over a path set and return a
  deterministic :class:`LintReport`.

Suppressions: a comment ``# repro: allow[rule-id] <one-line reason>``
on the offending line (or the line directly above it) silences that
rule there; ``allow[*]`` silences every rule.  Suppressed findings are
counted, not dropped silently — ``lint --json`` lists them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.findings import Finding
from repro.util.registry import Registry

#: rule-id -> LintRule subclass.  Rules self-register at import time;
#: :func:`load_rules` imports the bundled rule modules.
RULES: Registry[type["LintRule"]] = Registry("lint rule")

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\- ]+)\]")

#: Directory names never descended into when expanding a path.
_SKIP_DIRS = frozenset({"__pycache__", "build", ".git", ".ruff_cache"})


def register_rule(cls: type["LintRule"]) -> type["LintRule"]:
    """Class decorator: file ``cls`` under ``cls.id`` in :data:`RULES`."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} must define a non-empty id")
    RULES.register(cls.id, doc=cls.title)(cls)
    return cls


def load_rules() -> None:
    """Import the bundled rule modules (idempotent registration)."""
    import repro.lint.rules  # noqa: F401  (import-for-side-effect)


class LintRule:
    """Base class for one invariant check.

    ``scope`` is a tuple of dotted module prefixes; :meth:`check_module`
    only runs on files whose derived module name falls under one of
    them.  Project-wide rules (``project_wide = True``) additionally get
    one :meth:`check_project` call with the whole file set.
    """

    id: str = ""
    title: str = ""
    #: Why the invariant exists — printed by ``lint --list-rules``.
    rationale: str = ""
    scope: tuple[str, ...] = ("repro",)
    project_wide: bool = False

    def applies_to(self, module: str | None) -> bool:
        """Whether this rule inspects a module of the given dotted name."""
        if module is None:
            return False
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check_module(self, src: "ModuleSource") -> Iterable[Finding]:
        """Per-file findings (called once per in-scope module)."""
        return ()

    def check_project(self, project: "Project") -> Iterable[Finding]:
        """Cross-file findings (called once per analysis run)."""
        return ()


def module_name_for(path: Path) -> str | None:
    """Derive the dotted module name from a file path.

    Anchors on the last path component named ``repro`` so both the
    in-repo layout (``src/repro/sim/link.py`` -> ``repro.sim.link``)
    and synthetic trees (``/tmp/seed/repro/sim/bad.py``) resolve; files
    outside any ``repro`` package return ``None`` and are skipped by
    every scoped rule.
    """
    parts = path.with_suffix("").parts
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    dotted = list(parts[anchor:])
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


class ModuleSource:
    """One Python source file prepared for rule inspection."""

    def __init__(
        self,
        text: str,
        path: Path | str = "<fixture>",
        module: str | None = None,
        display_path: str | None = None,
    ) -> None:
        self.text = text
        self.path = Path(path)
        self.module = (
            module if module is not None else module_name_for(self.path)
        )
        self.display_path = (
            display_path if display_path is not None
            else self.path.as_posix()
        )
        self.lines = text.splitlines()
        self._tree: ast.Module | None = None
        self._allows: dict[int, frozenset[str]] | None = None
        self._parents: dict[ast.AST, tuple[ast.AST, str]] | None = None

    @classmethod
    def from_file(cls, path: Path, root: Path | None = None) -> "ModuleSource":
        """Load a file, displaying its path relative to ``root``."""
        display = None
        if root is not None:
            try:
                display = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                display = path.as_posix()
        return cls(
            path.read_text(encoding="utf-8"), path, display_path=display
        )

    @property
    def tree(self) -> ast.Module:
        """The parsed AST (raises :class:`SyntaxError` on broken files)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree

    @property
    def allows(self) -> dict[int, frozenset[str]]:
        """line number -> rule ids suppressed on that line."""
        if self._allows is None:
            table: dict[int, frozenset[str]] = {}
            for lineno, line in enumerate(self.lines, start=1):
                match = _ALLOW_RE.search(line)
                if match:
                    ids = frozenset(
                        part.strip() for part in match.group(1).split(",")
                        if part.strip()
                    )
                    table[lineno] = ids
            self._allows = table
        return self._allows

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline allow covers ``finding`` (same or prior line)."""
        for lineno in (finding.line, finding.line - 1):
            ids = self.allows.get(lineno)
            if ids and (finding.rule in ids or "*" in ids):
                return True
        return False

    def parents(self) -> dict[ast.AST, tuple[ast.AST, str]]:
        """child node -> (parent node, field name) for ancestry walks."""
        if self._parents is None:
            table: dict[ast.AST, tuple[ast.AST, str]] = {}
            for parent in ast.walk(self.tree):
                for fieldname, value in ast.iter_fields(parent):
                    if isinstance(value, ast.AST):
                        table[value] = (parent, fieldname)
                    elif isinstance(value, list):
                        for item in value:
                            if isinstance(item, ast.AST):
                                table[item] = (parent, fieldname)
            self._parents = table
        return self._parents

    def finding(
        self, rule: str, where: ast.AST | int, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at a node or line number."""
        line = where if isinstance(where, int) else getattr(where, "lineno", 0)
        snippet = (
            self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        )
        return Finding(
            rule=rule,
            path=self.display_path,
            line=line,
            message=message,
            snippet=snippet,
        )


@dataclass
class Project:
    """The analyzed file set, for cross-file rules."""

    sources: list[ModuleSource]
    root: Path | None = None

    def source_for(self, module: str) -> ModuleSource | None:
        """The analyzed source of a dotted module name, if present."""
        for src in self.sources:
            if src.module == module:
                return src
        return None


@dataclass
class LintReport:
    """Deterministic result of one :func:`analyze` run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: int = 0
    errors: list[Finding] = field(default_factory=list)  # unparseable files

    @property
    def all_findings(self) -> list[Finding]:
        """Active findings plus parse errors (what the gate counts)."""
        return sorted(
            self.findings + self.errors, key=lambda f: f.sort_key
        )


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories to sorted ``*.py`` paths (skips caches)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    yield sub
        else:
            yield path


def _instantiate(rules: Iterable[str] | None) -> list[LintRule]:
    load_rules()
    names = list(rules) if rules is not None else RULES.names()
    return [RULES.get(name)() for name in names]


def analyze(
    paths: Iterable[Path | str],
    rules: Iterable[str] | None = None,
    root: Path | None = None,
) -> LintReport:
    """Run the (selected) rules over ``paths`` and report findings.

    ``root`` anchors display paths and tells project-wide rules where
    companion non-Python sources (``_corec.c``) live.  Findings are
    sorted, suppressions applied, and parse failures reported as
    findings of the pseudo-rule ``parse-error`` rather than raised —
    a broken file must fail the gate, not crash it.
    """
    report = LintReport()
    sources: list[ModuleSource] = []
    for path in iter_python_files(paths):
        src = ModuleSource.from_file(path, root=root)
        report.files += 1
        try:
            src.tree
        except SyntaxError as exc:
            report.errors.append(
                src.finding(
                    "parse-error", exc.lineno or 0, f"cannot parse: {exc.msg}"
                )
            )
            continue
        sources.append(src)
    project = Project(sources=sources, root=root)

    raw: list[Finding] = []
    for rule in _instantiate(rules):
        for src in sources:
            if rule.applies_to(src.module):
                raw.extend(rule.check_module(src))
        if rule.project_wide:
            raw.extend(rule.check_project(project))

    by_display = {src.display_path: src for src in sources}
    for finding in sorted(set(raw), key=lambda f: f.sort_key):
        src = by_display.get(finding.path)
        if src is not None and src.is_suppressed(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def analyze_source(
    text: str,
    module: str,
    rules: Iterable[str] | None = None,
    path: str = "<fixture>",
) -> list[Finding]:
    """Fixture helper: run per-module rules over one source snippet.

    Returns the unsuppressed findings, sorted.  Used heavily by the
    self-test suite; project-wide rules' cross-file passes don't run
    here (they have dedicated entry points that take explicit inputs).
    """
    src = ModuleSource(text, path=path, module=module)
    raw: list[Finding] = []
    for rule in _instantiate(rules):
        if rule.applies_to(src.module):
            raw.extend(rule.check_module(src))
    return [
        f for f in sorted(set(raw), key=lambda f: f.sort_key)
        if not src.is_suppressed(f)
    ]
