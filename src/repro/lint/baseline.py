"""The committed findings baseline.

The baseline is the escape hatch that lets the ``--check`` gate land on
a tree with known, adjudicated debt: a JSON file of finding
fingerprints that the gate tolerates.  Fingerprints are
content-addressed (rule + path + stripped source line), so unrelated
edits that shift line numbers do not invalidate the baseline, while
touching the offending line itself does — exactly when a human should
re-look.

Policy: the baseline ships **empty**.  New findings are fixed or carry
an inline ``# repro: allow[rule-id] <reason>``; the baseline exists for
the transitional case where a rule tightens faster than the tree can
follow, and every entry in it is expected to drain.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.analyzer import LintReport
from repro.lint.findings import Finding

BASELINE_NAME = "lint-baseline.json"
_VERSION = 1


def load_baseline(path: Path) -> set[str]:
    """The baselined fingerprints (empty set for a missing file)."""
    if not path.is_file():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {payload.get('version')!r}"
        )
    return {
        entry["fingerprint"] for entry in payload.get("findings", ())
    }


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Serialize ``findings`` as the new baseline (sorted, stable)."""
    payload = {
        "version": _VERSION,
        "findings": [
            f.to_dict() for f in sorted(findings, key=lambda f: f.sort_key)
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def partition(
    report: LintReport, baselined: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split a report's findings into (new, tolerated-by-baseline)."""
    new: list[Finding] = []
    tolerated: list[Finding] = []
    for finding in report.all_findings:
        if finding.fingerprint in baselined:
            tolerated.append(finding)
        else:
            new.append(finding)
    return new, tolerated
