"""Transport agents: TCP-like responsive senders, unresponsive CBR
senders, and receiving sinks.

MAFIC's discrimination signal is behavioural: a conforming TCP sender
slows down when it sees loss and duplicate ACKs; an attack source (or any
unresponsive sender) does not.  These agents provide exactly that
behaviour on top of :mod:`repro.sim`.
"""

from repro.transport.flow import FlowAgent, FlowStats
from repro.transport.sink import AckingSink, CountingSink
from repro.transport.tcp import TcpSender
from repro.transport.udp import CbrSender, OnOffSender

__all__ = [
    "AckingSink",
    "CbrSender",
    "CountingSink",
    "FlowAgent",
    "FlowStats",
    "OnOffSender",
    "TcpSender",
]
