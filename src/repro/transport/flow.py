"""Base flow-agent machinery shared by TCP and CBR senders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.packet import FlowKey, Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.node import Host


@dataclass
class FlowStats:
    """Sender-side counters every agent maintains."""

    packets_sent: int = 0
    bytes_sent: int = 0
    acks_received: int = 0
    dup_acks_received: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    first_send_time: float | None = None
    last_send_time: float | None = None
    send_times: list[float] = field(default_factory=list)

    def sending_rate_bps(self, window: float, now: float, packet_size: int) -> float:
        """Recent sending rate over the trailing ``window`` seconds."""
        if window <= 0:
            raise ValueError("window must be positive")
        cutoff = now - window
        recent = sum(1 for t in self.send_times if t > cutoff)
        return recent * packet_size * 8.0 / window


class FlowAgent:
    """Common base: owns a flow key, a host, and send bookkeeping.

    Subclasses implement :meth:`start` / :meth:`handle_packet`; the base
    provides packet construction and the shared counters.  ``is_attack``
    marks every emitted packet as ground-truth malicious for the metrics
    layer (the defence never reads it).
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: FlowKey,
        packet_size: int = 1000,
        is_attack: bool = False,
        keep_send_times: bool = False,
    ) -> None:
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        self.sim = sim
        self.host = host
        self.flow = flow
        self.packet_size = int(packet_size)
        self.is_attack = bool(is_attack)
        self.keep_send_times = keep_send_times
        self.stats = FlowStats()
        self.started = False
        self.stopped = False

    def start(self, at: float | None = None) -> None:
        """Begin sending at absolute time ``at`` (default: now)."""
        raise NotImplementedError

    def stop(self) -> None:
        """Stop sending new packets."""
        self.stopped = True

    def handle_packet(self, packet: Packet, now: float) -> None:
        """Receive a packet addressed to this agent's source port."""
        raise NotImplementedError

    def _emit(self, packet: Packet) -> bool:
        """Send one packet through the host, updating counters."""
        now = self.sim.now
        packet.created_at = now
        packet.ts_val = now
        packet.is_attack = self.is_attack
        size = packet.size  # read before send: a dropped packet is recycled
        stats = self.stats
        sent = self.host.send(packet)
        stats.packets_sent += 1
        stats.bytes_sent += size
        if stats.first_send_time is None:
            stats.first_send_time = now
        stats.last_send_time = now
        if self.keep_send_times:
            stats.send_times.append(now)
        return sent

    def _make_data(self, seq: int) -> Packet:
        return Packet.acquire(
            flow=self.flow,
            size=self.packet_size,
            seq=seq,
            is_attack=self.is_attack,
        )
