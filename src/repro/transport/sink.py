"""Receiving sinks.

:class:`AckingSink` is a TCP receiver: cumulative ACKs, duplicate ACKs on
out-of-order arrivals, timestamp echo.  :class:`CountingSink` just counts
(the victim's view of raw arrival volume, used for UDP flows and for the
Fig. 4 time series).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.packet import Packet, PacketType
from repro.util.stats import WindowedRate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.node import Host


class CountingSink:
    """Counts arrivals; optionally tracks a windowed arrival rate."""

    def __init__(
        self,
        sim: "Simulator",
        rate_window: float | None = None,
        on_packet: Callable[[Packet, float], None] | None = None,
    ) -> None:
        self.sim = sim
        self.packets_received = 0
        self.bytes_received = 0
        self.attack_packets_received = 0
        self.legit_packets_received = 0
        self._rate = WindowedRate(rate_window) if rate_window else None
        self._on_packet = on_packet

    def handle_packet(self, packet: Packet, now: float) -> None:
        """Count one arrival."""
        if packet.ptype not in (PacketType.DATA,):
            return
        self.packets_received += 1
        self.bytes_received += packet.size
        if packet.is_attack:
            self.attack_packets_received += 1
        else:
            self.legit_packets_received += 1
        if self._rate is not None:
            self._rate.record(now, packet.size * 8.0)
        if self._on_packet is not None:
            self._on_packet(packet, now)

    def arrival_rate_bps(self, now: float) -> float:
        """Windowed arrival rate in bits/s (0 when no window configured)."""
        return self._rate.rate(now) if self._rate is not None else 0.0


class AckingSink(CountingSink):
    """A TCP receiver: cumulative ACK generation with dup-ACKs.

    Keeps an out-of-order buffer of segment numbers; every DATA arrival
    triggers exactly one ACK carrying the next expected segment, so a gap
    produces the duplicate-ACK train a Reno sender needs for fast
    retransmit.
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        ack_size: int = 40,
        rate_window: float | None = None,
        on_packet: Callable[[Packet, float], None] | None = None,
        delayed_ack: float = 0.0,
    ) -> None:
        super().__init__(sim, rate_window=rate_window, on_packet=on_packet)
        if delayed_ack < 0:
            raise ValueError("delayed_ack must be non-negative")
        self.host = host
        self.ack_size = int(ack_size)
        #: RFC 1122 delayed-ACK timer (seconds); 0 disables.  With the
        #: timer armed, in-order arrivals ACK every second segment or at
        #: timer expiry; out-of-order arrivals still ACK immediately
        #: (the dup-ACK train fast retransmit depends on).
        self.delayed_ack = float(delayed_ack)
        self._next_expected: dict[int, int] = {}  # flow_hash -> next seq
        self._ooo: dict[int, set[int]] = {}  # flow_hash -> buffered seqs
        # flow_hash -> (flow, ts_val) of the DATA arrival holding a
        # delayed ACK.  Scalars, not the packet: a delivered packet is
        # recycled into the pool the moment the handler returns.
        self._pending_ack: dict[int, tuple] = {}
        self._pending_events: dict[int, object] = {}
        self.acks_sent = 0
        self.dup_acks_sent = 0
        self.delayed_acks_coalesced = 0

    def handle_packet(self, packet: Packet, now: float) -> None:
        """Count, reassemble, and ACK one DATA arrival."""
        if packet.ptype is not PacketType.DATA:
            return
        super().handle_packet(packet, now)
        key = packet.flow_hash
        expected = self._next_expected.get(key, 0)
        buffered = self._ooo.setdefault(key, set())
        in_order = False
        if packet.seq == expected:
            in_order = True
            expected += 1
            while expected in buffered:
                buffered.discard(expected)
                expected += 1
            self._next_expected[key] = expected
        elif packet.seq > expected:
            buffered.add(packet.seq)
            self.dup_acks_sent += 1
        # else: stale retransmission; re-ACK the frontier.
        frontier = self._next_expected.get(key, expected)
        if self.delayed_ack > 0 and in_order:
            self._delayed_ack_path(packet, key, now)
        else:
            self._flush_pending(key)
            self._send_ack(packet.flow, packet.ts_val, frontier, now)

    def _delayed_ack_path(self, packet: Packet, key: int, now: float) -> None:
        if key in self._pending_ack:
            # Second in-order segment: ACK immediately (RFC 1122).
            event = self._pending_events.pop(key, None)
            if event is not None:
                event.cancel()
            self._pending_ack.pop(key, None)
            self.delayed_acks_coalesced += 1
            self._send_ack(packet.flow, packet.ts_val, self._next_expected[key], now)
            return
        self._pending_ack[key] = (packet.flow, packet.ts_val)
        self._pending_events[key] = self.sim.schedule(
            self.delayed_ack, self._ack_timer_fired, key
        )

    def _ack_timer_fired(self, key: int) -> None:
        pending = self._pending_ack.pop(key, None)
        self._pending_events.pop(key, None)
        if pending is None:
            return
        flow, ts_val = pending
        self._send_ack(flow, ts_val, self._next_expected.get(key, 0), self.sim.now)

    def _flush_pending(self, key: int) -> None:
        """Release any held ACK before answering out-of-order traffic."""
        pending = self._pending_ack.pop(key, None)
        event = self._pending_events.pop(key, None)
        if event is not None:
            event.cancel()
        if pending is not None:
            flow, ts_val = pending
            self._send_ack(flow, ts_val, self._next_expected.get(key, 0), self.sim.now)

    def _send_ack(self, flow, data_ts_val: float, ack_seq: int, now: float) -> None:
        ack = Packet.build_ack(flow, data_ts_val, ack_seq, now, size=self.ack_size)
        self.acks_sent += 1
        self.host.send(ack)
