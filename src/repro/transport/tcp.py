"""A TCP-like AIMD sender.

Implements the congestion-control behaviour MAFIC relies on: slow start,
congestion avoidance, fast retransmit on three duplicate ACKs, and a
retransmission timeout with exponential backoff (RTT estimation per
RFC 6298).  When an ATR probes the flow by dropping packets and forging
duplicate ACKs back to the source, this sender reacts exactly as a real
TCP would — it halves its window, which is the "arrival rate decreased"
signal that moves the flow to the Nice Flow Table.

Sequence numbers count *segments* (each ``packet_size`` bytes of
payload), cwnd is in segments as in the NS-2 Tahoe/Reno agents.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.perf import FLAGS
from repro.sim.packet import FlowKey, Packet, PacketType
from repro.transport.flow import FlowAgent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.node import Host

# RFC 6298 constants.
_ALPHA = 1.0 / 8.0
_BETA = 1.0 / 4.0
_K = 4.0
_MIN_RTO = 0.2  # NS-2 style floor (the RFC's 1 s is too coarse for 10 ms RTTs)
_MAX_RTO = 60.0


class TcpSender(FlowAgent):
    """Greedy (FTP-like) TCP sender with Reno-style congestion control.

    Parameters
    ----------
    initial_cwnd:
        Initial congestion window in segments.
    ssthresh:
        Initial slow-start threshold in segments.
    max_cwnd:
        Cap on the window (receiver window stand-in).
    app_limit_bps:
        Optional application rate limit; ``None`` means greedy.
    """

    DUP_ACK_THRESHOLD = 3

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: FlowKey,
        packet_size: int = 1000,
        initial_cwnd: float = 2.0,
        ssthresh: float = 64.0,
        max_cwnd: float = 256.0,
        app_limit_bps: float | None = None,
        total_segments: int | None = None,
        on_complete=None,
        keep_send_times: bool = False,
    ) -> None:
        super().__init__(sim, host, flow, packet_size, is_attack=False,
                         keep_send_times=keep_send_times)
        if initial_cwnd < 1:
            raise ValueError("initial_cwnd must be >= 1 segment")
        if max_cwnd < initial_cwnd:
            raise ValueError("max_cwnd must be >= initial_cwnd")
        if total_segments is not None and total_segments < 1:
            raise ValueError("total_segments must be >= 1 when set")
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float(ssthresh)
        self.max_cwnd = float(max_cwnd)
        self.app_limit_bps = app_limit_bps

        self.next_seq = 0  # next new segment to send
        self.high_ack = 0  # highest cumulative ACK received (next expected seq)
        self._dup_ack_count = 0
        self._in_fast_recovery = False
        self._recover_seq = 0

        self._srtt: float | None = None
        self._rttvar = 0.0
        self.rto = 1.0
        self._rto_event = None
        self._sent_at: dict[int, float] = {}  # seq -> send time (for RTT sampling)
        self._retransmitted: set[int] = set()  # Karn's rule: no RTT sample

        #: Finite transfer: stop after this many segments are cumulatively
        #: acknowledged (None = unbounded FTP-style source).
        self.total_segments = total_segments
        #: Called once, with the completion time, when a finite transfer's
        #: last segment is acknowledged.
        self.on_complete = on_complete
        self.completed_at: float | None = None

        self.cwnd_history: list[tuple[float, float]] = []
        self._app_gate_open = True
        self._last_peer_ts = 0.0  # timestamp echo (ts_ecr) for data we send

    # ------------------------------------------------------------------ API

    def start(self, at: float | None = None) -> None:
        """Begin the transfer at absolute time ``at`` (default now)."""
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        when = self.sim.now if at is None else at
        self.sim.schedule_at(when, self._try_send)

    def handle_packet(self, packet: Packet, now: float) -> None:
        """Process an incoming ACK (real or a forged MAFIC probe)."""
        if packet.ptype not in (PacketType.ACK, PacketType.DUP_ACK):
            return
        self.stats.acks_received += 1
        if packet.ts_val > self._last_peer_ts:
            self._last_peer_ts = packet.ts_val
        if packet.ack > self.high_ack:
            self._on_new_ack(packet, now)
        else:
            self._on_dup_ack(packet, now)
        self._try_send()

    @property
    def in_flight(self) -> int:
        """Segments sent but not yet cumulatively acknowledged."""
        return max(0, self.next_seq - self.high_ack)

    @property
    def srtt(self) -> float | None:
        """Smoothed RTT estimate, or None before the first sample."""
        return self._srtt

    # ------------------------------------------------------- ACK processing

    def _on_new_ack(self, packet: Packet, now: float) -> None:
        newly_acked = packet.ack - self.high_ack
        self.high_ack = packet.ack
        self._dup_ack_count = 0
        if (
            self.total_segments is not None
            and self.completed_at is None
            and self.high_ack >= self.total_segments
        ):
            self.completed_at = now
            self.stopped = True
            if self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
            if self.on_complete is not None:
                self.on_complete(now)
            return

        # RTT sample from the earliest newly-acked, never-retransmitted seg.
        for seq in range(packet.ack - newly_acked, packet.ack):
            sent = self._sent_at.pop(seq, None)
            if sent is not None and seq not in self._retransmitted:
                self._update_rtt(now - sent)
            self._retransmitted.discard(seq)

        if self._in_fast_recovery:
            if packet.ack >= self._recover_seq:
                self._in_fast_recovery = False
                self.cwnd = self.ssthresh
            # Partial ACKs keep us in recovery (NewReno-lite).
        elif self.cwnd < self.ssthresh:
            self.cwnd = min(self.max_cwnd, self.cwnd + newly_acked)  # slow start
        else:
            self.cwnd = min(self.max_cwnd, self.cwnd + newly_acked / self.cwnd)

        self._record_cwnd(now)
        self._restart_rto()

    def _on_dup_ack(self, packet: Packet, now: float) -> None:
        self.stats.dup_acks_received += 1
        self._dup_ack_count += 1
        if self._in_fast_recovery:
            self.cwnd = min(self.max_cwnd, self.cwnd + 1)  # window inflation
            self._record_cwnd(now)
            return
        if self._dup_ack_count >= self.DUP_ACK_THRESHOLD:
            # Fast retransmit + fast recovery.
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self.cwnd = self.ssthresh + self.DUP_ACK_THRESHOLD
            self._in_fast_recovery = True
            self._recover_seq = self.next_seq
            self._retransmit(self.high_ack)
            self._record_cwnd(now)
            self._restart_rto()

    # ------------------------------------------------------------- sending

    def _try_send(self) -> None:
        if self.stopped:
            return
        if self.app_limit_bps is not None and not self._app_gate_open:
            return
        window = int(self.cwnd)
        while self.next_seq < self.high_ack + window:
            if (
                self.total_segments is not None
                and self.next_seq >= self.total_segments
            ):
                return
            if self.app_limit_bps is not None:
                self._send_segment(self.next_seq)
                self.next_seq += 1
                self._app_gate_open = False
                gap = self.packet_size * 8.0 / self.app_limit_bps
                self.sim.schedule(gap, self._open_app_gate)
                return
            self._send_segment(self.next_seq)
            self.next_seq += 1

    def _open_app_gate(self) -> None:
        self._app_gate_open = True
        self._try_send()

    def _send_segment(self, seq: int) -> None:
        packet = self._make_data(seq)
        packet.ts_ecr = self._last_peer_ts
        self._sent_at[seq] = self.sim.now
        self._emit(packet)
        if self._rto_event is None:
            self._restart_rto()

    def _retransmit(self, seq: int) -> None:
        self.stats.retransmissions += 1
        self._retransmitted.add(seq)
        packet = self._make_data(seq)
        packet.ts_ecr = self._last_peer_ts
        self._emit(packet)

    # ----------------------------------------------------------- RTO logic

    def _update_rtt(self, sample: float) -> None:
        if sample < 0:
            return
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = (1 - _BETA) * self._rttvar + _BETA * abs(self._srtt - sample)
            self._srtt = (1 - _ALPHA) * self._srtt + _ALPHA * sample
        self.rto = min(_MAX_RTO, max(_MIN_RTO, self._srtt + _K * self._rttvar))

    def _restart_rto(self) -> None:
        ev = self._rto_event
        if self.in_flight > 0 and not self.stopped:
            if ev is not None and FLAGS.lazy_timers:
                # Per-ACK deadline bump: postpone the pending timer in
                # place instead of a cancel+reschedule round trip.  One
                # seq draw either way, so this is bit-exact (the golden
                # master and the event-churn regression test pin it).
                sim = self.sim
                self._rto_event = sim.postpone(ev, sim.now + self.rto)
                return
            if ev is not None:
                ev.cancel()
            self._rto_event = self.sim.schedule(self.rto, self._on_timeout)
        elif ev is not None:
            ev.cancel()
            self._rto_event = None

    def _on_timeout(self) -> None:
        self._rto_event = None
        if self.stopped or self.in_flight == 0:
            return
        self.stats.timeouts += 1
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = 1.0
        self._in_fast_recovery = False
        self._dup_ack_count = 0
        self.rto = min(_MAX_RTO, self.rto * 2.0)  # exponential backoff
        self.next_seq = self.high_ack  # go-back-N resend from the hole
        self._record_cwnd(self.sim.now)
        self._retransmit_after_timeout()

    def _retransmit_after_timeout(self) -> None:
        self._retransmit(self.high_ack)
        self.next_seq = self.high_ack + 1
        self._restart_rto()

    def _record_cwnd(self, now: float) -> None:
        self.cwnd_history.append((now, self.cwnd))
