"""Unresponsive senders: constant bit rate and on-off.

These agents ignore everything the network tells them — exactly the
behaviour that distinguishes a zombie (or a non-congestion-controlled
media stream) from a conforming TCP source under MAFIC's probe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.packet import FlowKey, Packet
from repro.transport.flow import FlowAgent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.node import Host


class CbrSender(FlowAgent):
    """Constant-bit-rate sender.

    Emits ``packet_size``-byte packets every ``packet_size*8/rate_bps``
    seconds, optionally with multiplicative jitter.  ``spoof`` lets a
    zombie rewrite the claimed source address of each packet (the flow key
    stays fixed unless the spoofer varies it — MAFIC tracks flows by the
    4-tuple, so per-packet source rotation creates *new* flows).
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: FlowKey,
        rate_bps: float = 1e6,
        packet_size: int = 1000,
        is_attack: bool = False,
        jitter: float = 0.0,
        rng=None,
        spoof: Callable[[Packet], Packet] | None = None,
        keep_send_times: bool = False,
    ) -> None:
        super().__init__(sim, host, flow, packet_size, is_attack=is_attack,
                         keep_send_times=keep_send_times)
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.rate_bps = float(rate_bps)
        self.jitter = float(jitter)
        self._rng = rng
        self._spoof = spoof
        self._seq = 0

    @property
    def interval(self) -> float:
        """Nominal inter-packet gap in seconds."""
        return self.packet_size * 8.0 / self.rate_bps

    def start(self, at: float | None = None) -> None:
        """Begin emitting at absolute time ``at`` (default now)."""
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        when = self.sim.now if at is None else at
        self.sim.schedule_at(when, self._tick)

    def handle_packet(self, packet: Packet, now: float) -> None:
        """Ignore all feedback (ACKs, probes): unresponsive by design."""
        self.stats.acks_received += 1

    def _tick(self) -> None:
        if self.stopped:
            return
        packet = self._make_data(self._seq)
        self._seq += 1
        if self._spoof is not None:
            packet = self._spoof(packet)
        self._emit(packet)
        gap = self.interval
        if self.jitter > 0:
            gap *= 1.0 + self.jitter * (2.0 * float(self._rng.random()) - 1.0)
        self.sim.schedule(gap, self._tick)

    def _emit(self, packet: Packet) -> bool:
        # CbrSender may replace the packet's flow via spoofing, so stats
        # are tracked here rather than via _make_data's flow.
        return super()._emit(packet)


class OnOffSender(CbrSender):
    """On-off CBR: bursts at ``rate_bps``, silent in between.

    Used for pulsing-attack ablations and as a bursty legitimate UDP
    workload.  By default ``mean_on``/``mean_off`` are the exponential
    means of the burst and silence durations; with
    ``deterministic=True`` they are the *exact* durations, giving a
    strictly periodic square-wave "pulse train" — the duty-cycled shape
    that probes verdict-timer defences (silent while judged, bursting
    between verdicts).
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: FlowKey,
        rate_bps: float = 1e6,
        packet_size: int = 1000,
        mean_on: float = 0.5,
        mean_off: float = 0.5,
        is_attack: bool = False,
        rng=None,
        spoof: Callable[[Packet], Packet] | None = None,
        keep_send_times: bool = False,
        deterministic: bool = False,
    ) -> None:
        if rng is None:
            raise ValueError("OnOffSender requires an rng")
        if mean_on <= 0 or mean_off < 0:
            raise ValueError("mean_on must be > 0 and mean_off >= 0")
        super().__init__(sim, host, flow, rate_bps, packet_size,
                         is_attack=is_attack, rng=rng, spoof=spoof,
                         keep_send_times=keep_send_times)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.deterministic = bool(deterministic)
        self._on = False
        self._phase_ends = 0.0

    def _draw_on(self) -> float:
        if self.deterministic:
            return self.mean_on
        return float(self._rng.exponential(self.mean_on))

    def _draw_off(self) -> float:
        if self.mean_off == 0:
            return 0.0
        if self.deterministic:
            return self.mean_off
        return float(self._rng.exponential(self.mean_off))

    def start(self, at: float | None = None) -> None:
        """Begin the first burst at ``at`` (default now)."""
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        when = self.sim.now if at is None else at
        self.sim.schedule_at(when, self._start_burst)

    def _start_burst(self) -> None:
        if self.stopped:
            return
        self._on = True
        self._phase_ends = self.sim.now + self._draw_on()
        self._tick()

    def _tick(self) -> None:
        if self.stopped:
            return
        if not self._on:
            return
        if self.sim.now >= self._phase_ends:
            self._on = False
            self.sim.schedule(self._draw_off(), self._start_burst)
            return
        packet = self._make_data(self._seq)
        self._seq += 1
        if self._spoof is not None:
            packet = self._spoof(packet)
        self._emit(packet)
        self.sim.schedule(self.interval, self._tick)
