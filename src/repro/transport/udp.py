"""Unresponsive senders: constant bit rate and on-off.

These agents ignore everything the network tells them — exactly the
behaviour that distinguishes a zombie (or a non-congestion-controlled
media stream) from a conforming TCP source under MAFIC's probe.

Tick generation is **batched** (PR 4): instead of one self-rescheduling
event per packet, a sender precomputes its departure times per horizon
chunk and rides a single reusable
:class:`~repro.sim.engine.SeriesEvent`.  Each departure still executes as
its own event (the interleaving with link/transport events is what the
paper's physics runs on), but the per-tick schedule call, event
allocation, and RNG scalar draw disappear.  Results are bit-identical
because the draws come from the same streams in the same order:

* ``jitter == 0`` — departure times are pure float arithmetic (the same
  repeated additions the unbatched loop performed); always batchable.
* ``jitter > 0`` with an **exclusive** RNG stream (nothing else draws
  from it during the run — the per-flow ``("legit", "udp", i)`` streams)
  — jitter factors are drawn in bulk, value ``i`` still maps to gap
  ``i``; numpy's bulk ``random(n)`` consumes the bit generator exactly
  like ``n`` scalar calls.
* ``jitter > 0`` on a **shared** stream (all zombies draw from the one
  ``"attack"`` stream, interleaved in event order) — departures cannot
  be precomputed per sender, but the scalar draw is served from a shared
  :class:`~repro.util.rng.UniformBuffer` that prefetches the stream and
  hands out values in the same global tick order.

On-off bursts batch unconditionally: the burst's departure times depend
only on the on-duration drawn at burst start, and the off/on draws keep
their positions at the phase boundaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.perf import FLAGS
from repro.sim.packet import FlowKey, Packet
from repro.transport.flow import FlowAgent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import SeriesEvent, Simulator
    from repro.sim.node import Host
    from repro.util.rng import UniformBuffer

#: Departure times precomputed per series chunk.
_CHUNK = 256


class CbrSender(FlowAgent):
    """Constant-bit-rate sender.

    Emits ``packet_size``-byte packets every ``packet_size*8/rate_bps``
    seconds, optionally with multiplicative jitter.  ``spoof`` lets a
    zombie rewrite the claimed source address of each packet (the flow key
    stays fixed unless the spoofer varies it — MAFIC tracks flows by the
    4-tuple, so per-packet source rotation creates *new* flows).

    ``exclusive_rng=True`` declares that nothing else draws from ``rng``
    while this sender runs, unlocking fully precomputed (batched)
    departure times; ``jitter_buffer`` provides the shared-stream
    prefetch path instead (see module docstring).  Both default off, so a
    bare construction behaves exactly like the unbatched original.
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: FlowKey,
        rate_bps: float = 1e6,
        packet_size: int = 1000,
        is_attack: bool = False,
        jitter: float = 0.0,
        rng=None,
        spoof: Callable[[Packet], Packet] | None = None,
        keep_send_times: bool = False,
        exclusive_rng: bool = False,
        jitter_buffer: "UniformBuffer | None" = None,
    ) -> None:
        super().__init__(sim, host, flow, packet_size, is_attack=is_attack,
                         keep_send_times=keep_send_times)
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.rate_bps = float(rate_bps)
        self.jitter = float(jitter)
        self._rng = rng
        self._spoof = spoof
        self._seq = 0
        self._exclusive_rng = bool(exclusive_rng)
        self._jitter_buffer = jitter_buffer
        self._use_buffer = False
        self._series: "SeriesEvent | None" = None

    @property
    def interval(self) -> float:
        """Nominal inter-packet gap in seconds."""
        return self.packet_size * 8.0 / self.rate_bps

    def start(self, at: float | None = None) -> None:
        """Begin emitting at absolute time ``at`` (default now)."""
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        when = self.sim.now if at is None else at
        if FLAGS.batched_sources and (self.jitter == 0.0 or self._exclusive_rng):
            times = [when]
            times.extend(self._next_gaps(when, _CHUNK))
            self._series = self.sim.schedule_series(times, self._series_tick)
        else:
            self._use_buffer = (
                FLAGS.batched_sources
                and self.jitter > 0
                and self._jitter_buffer is not None
            )
            self.sim.schedule_at(when, self._tick)

    def handle_packet(self, packet: Packet, now: float) -> None:
        """Ignore all feedback (ACKs, probes): unresponsive by design."""
        self.stats.acks_received += 1

    # ------------------------------------------------------------ emission

    def _emit_one(self) -> None:
        packet = self._make_data(self._seq)
        self._seq += 1
        if self._spoof is not None:
            packet = self._spoof(packet)
        self._emit(packet)

    def _next_gaps(self, last_time: float, count: int) -> list[float]:
        """The next ``count`` departure times after ``last_time``.

        Same arithmetic as the unbatched loop: each time is the previous
        one plus ``interval * (1 + jitter * (2u - 1))``, with the jitter
        factors drawn in bulk from this sender's (exclusive) stream.

        Vectorized, bit-exactly: the per-gap terms are elementwise
        float64 expressions identical to the scalar ones, and numpy's
        ``add.accumulate`` (cumsum) folds strictly left-to-right — the
        same ``t = t + gap`` rounding sequence as the loop it replaces
        (unlike ``add.reduce``, which sums pairwise).
        """
        interval = self.interval
        jitter = self.jitter
        steps = np.empty(count + 1)
        steps[0] = last_time
        if jitter == 0.0:
            steps[1:] = interval
        else:
            u = self._rng.random(count)
            steps[1:] = interval * (1.0 + jitter * (2.0 * u - 1.0))
        return np.add.accumulate(steps)[1:].tolist()

    def _series_tick(self) -> None:
        if self.stopped:
            self._series.stop()
            return
        self._emit_one()
        series = self._series
        if series.index + 1 >= len(series.times):
            series.extend(self._next_gaps(series.times[-1], _CHUNK))

    def _tick(self) -> None:
        if self.stopped:
            return
        self._emit_one()
        gap = self.interval
        if self.jitter > 0:
            if self._use_buffer:
                u = self._jitter_buffer.next()
            else:
                u = float(self._rng.random())
            gap *= 1.0 + self.jitter * (2.0 * u - 1.0)
        self.sim.schedule(gap, self._tick)

    def _emit(self, packet: Packet) -> bool:
        # CbrSender may replace the packet's flow via spoofing, so stats
        # are tracked here rather than via _make_data's flow.
        return super()._emit(packet)


class OnOffSender(CbrSender):
    """On-off CBR: bursts at ``rate_bps``, silent in between.

    Used for pulsing-attack ablations and as a bursty legitimate UDP
    workload.  By default ``mean_on``/``mean_off`` are the exponential
    means of the burst and silence durations; with
    ``deterministic=True`` they are the *exact* durations, giving a
    strictly periodic square-wave "pulse train" — the duty-cycled shape
    that probes verdict-timer defences (silent while judged, bursting
    between verdicts).
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow: FlowKey,
        rate_bps: float = 1e6,
        packet_size: int = 1000,
        mean_on: float = 0.5,
        mean_off: float = 0.5,
        is_attack: bool = False,
        rng=None,
        spoof: Callable[[Packet], Packet] | None = None,
        keep_send_times: bool = False,
        deterministic: bool = False,
    ) -> None:
        if rng is None:
            raise ValueError("OnOffSender requires an rng")
        if mean_on <= 0 or mean_off < 0:
            raise ValueError("mean_on must be > 0 and mean_off >= 0")
        super().__init__(sim, host, flow, rate_bps, packet_size,
                         is_attack=is_attack, rng=rng, spoof=spoof,
                         keep_send_times=keep_send_times)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.deterministic = bool(deterministic)
        self._on = False
        self._phase_ends = 0.0

    def _draw_on(self) -> float:
        if self.deterministic:
            return self.mean_on
        return float(self._rng.exponential(self.mean_on))

    def _draw_off(self) -> float:
        if self.mean_off == 0:
            return 0.0
        if self.deterministic:
            return self.mean_off
        return float(self._rng.exponential(self.mean_off))

    def start(self, at: float | None = None) -> None:
        """Begin the first burst at ``at`` (default now)."""
        if self.started:
            raise RuntimeError("sender already started")
        self.started = True
        when = self.sim.now if at is None else at
        self.sim.schedule_at(when, self._start_burst)

    def _start_burst(self) -> None:
        if self.stopped:
            return
        self._on = True
        now = self.sim.now
        self._phase_ends = now + self._draw_on()
        if not FLAGS.batched_sources:
            self._tick()
            return
        # Batched burst: the first emission happens inline (mirroring the
        # unbatched direct _tick() call); subsequent departures ride a
        # series at one nominal interval apart — no draws are moved, so
        # this is bit-exact even on a shared RNG stream.
        if now >= self._phase_ends:
            self._on = False
            self.sim.schedule(self._draw_off(), self._start_burst)
            return
        self._emit_one()
        self._series = self.sim.schedule_series(
            self._burst_chunk(now), self._burst_tick
        )

    def _burst_chunk(self, last_time: float) -> list[float]:
        """Departure times after ``last_time``, through the first instant
        at or past the phase end (where the off transition fires).

        Vectorized like :meth:`_next_gaps` (sequential ``add.accumulate``
        keeps the rounding of the scalar loop); the early exit becomes a
        ``searchsorted`` for the first time at or past the phase end.
        """
        interval = self.interval
        end = self._phase_ends
        steps = np.empty(_CHUNK + 1)
        steps[0] = last_time
        steps[1:] = interval
        times = np.add.accumulate(steps)[1:]
        cut = int(np.searchsorted(times, end, side="left")) + 1
        return times[:cut].tolist()

    def _burst_tick(self) -> None:
        if self.stopped:
            self._series.stop()
            return
        now = self.sim.now
        if now >= self._phase_ends:
            self._series.stop()
            self._on = False
            self.sim.schedule(self._draw_off(), self._start_burst)
            return
        self._emit_one()
        series = self._series
        if series.index + 1 >= len(series.times):
            series.extend(self._burst_chunk(series.times[-1]))

    def _tick(self) -> None:
        if self.stopped:
            return
        if not self._on:
            return
        if self.sim.now >= self._phase_ends:
            self._on = False
            self.sim.schedule(self._draw_off(), self._start_burst)
            return
        self._emit_one()
        self.sim.schedule(self.interval, self._tick)
