"""Zombie hosts: compromised machines flooding the victim.

A zombie is an unresponsive sender (CBR or pulsing on-off) wired to a
spoofing model.  It lives on a real host inside some ingress subnet, but
the source addresses it claims are governed by its
:class:`~repro.attacks.spoofing.SpoofingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.attacks.spoofing import SpoofingModel, make_spoofer
from repro.sim.packet import FlowKey
from repro.transport.udp import CbrSender, OnOffSender
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.address import AddressSpace
    from repro.sim.engine import Simulator
    from repro.sim.node import Host


@dataclass
class ZombieConfig:
    """One zombie's behaviour."""

    rate_bps: float = 1e6
    packet_size: int = 1000
    spoofing: SpoofingModel = field(default_factory=SpoofingModel)
    pulsing: bool = False  # on-off (shrew-style) instead of constant
    mean_on: float = 0.3
    mean_off: float = 0.3
    pulse_train: bool = False  # deterministic square-wave on/off phases
    jitter: float = 0.05  # CBR inter-packet jitter fraction

    def __post_init__(self) -> None:
        check_positive("rate_bps", self.rate_bps)
        check_positive("packet_size", self.packet_size)
        if self.pulsing and self.mean_on <= 0:
            raise ValueError("pulsing zombies need mean_on > 0")


class Zombie:
    """A compromised host sending attack traffic toward the victim.

    Builds the underlying unresponsive sender and exposes start/stop plus
    its send statistics.  The flow's claimed source is whatever the
    spoofing model dictates; ``src_port`` is drawn randomly so concurrent
    zombies behind one host get distinct 4-tuples.
    """

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        victim_ip: int,
        victim_port: int,
        config: ZombieConfig,
        address_space: "AddressSpace",
        rng,
        jitter_buffer=None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.config = config
        src_port = int(rng.integers(1024, 65536))
        flow = FlowKey(host.address, victim_ip, src_port, victim_port)
        spoof = make_spoofer(config.spoofing, address_space, rng, host.address)
        if config.pulsing:
            self.sender = OnOffSender(
                sim,
                host,
                flow,
                rate_bps=config.rate_bps,
                packet_size=config.packet_size,
                mean_on=config.mean_on,
                mean_off=config.mean_off,
                is_attack=True,
                rng=rng,
                spoof=spoof,
                deterministic=config.pulse_train,
            )
        else:
            self.sender = CbrSender(
                sim,
                host,
                flow,
                rate_bps=config.rate_bps,
                packet_size=config.packet_size,
                is_attack=True,
                jitter=config.jitter,
                rng=rng,
                spoof=spoof,
                jitter_buffer=jitter_buffer,
            )
        # The flow identity on the wire (after stable spoofing) is fixed
        # by the first packet; capture it for ground-truth bookkeeping.
        probe_key = spoof(self._probe_packet(flow))
        self.wire_flow: FlowKey = probe_key.flow
        self._rotating = config.spoofing.rotate_per_packet

    @staticmethod
    def _probe_packet(flow: FlowKey):
        from repro.sim.packet import Packet

        return Packet(flow=flow)

    @property
    def rotates_sources(self) -> bool:
        """True when the zombie changes its claimed source per packet."""
        return self._rotating

    def start(self, at: float | None = None) -> None:
        """Begin flooding at absolute time ``at``."""
        self.sender.start(at)

    def stop(self) -> None:
        """Stop flooding."""
        self.sender.stop()

    @property
    def stats(self):
        """The underlying sender's FlowStats."""
        return self.sender.stats
