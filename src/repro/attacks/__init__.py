"""DDoS attack orchestration: spoofing models, zombies, and scenarios.

The paper targets attacks "lying somewhere in between" two extremes of IP
spoofing — some claimed sources are bogus, some are "legitimate" (valid
addresses of real subnets, though not the attacker's own).  The spoofing
models here span that spectrum; zombies are unresponsive senders wired to
a spoofer; scenarios place zombies across the domain's ingress routers.
"""

from repro.attacks.spoofing import (
    SpoofingModel,
    SpoofMode,
    make_spoofer,
)
from repro.attacks.zombie import Zombie, ZombieConfig
from repro.attacks.scenarios import AttackScenario, AttackScenarioConfig

__all__ = [
    "AttackScenario",
    "AttackScenarioConfig",
    "SpoofMode",
    "SpoofingModel",
    "Zombie",
    "ZombieConfig",
    "make_spoofer",
]
