"""Attack scenarios: placing and scheduling zombies across the domain.

A scenario takes a built :class:`~repro.sim.topology.Topology`, a zombie
count, and per-zombie behaviour, and instantiates the zombies on source
hosts spread over the ingress routers (round-robin by default, or
concentrated on a subset — the paper's ATR identification only flags
ingresses that actually carry attack flows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.attacks.zombie import Zombie, ZombieConfig
from repro.util.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.topology import Topology


@dataclass
class AttackScenarioConfig:
    """How many zombies, where, and when."""

    n_zombies: int = 10
    zombie: ZombieConfig = field(default_factory=ZombieConfig)
    start_time: float = 1.0
    stop_time: float | None = None  # None = never stops
    ingress_subset: list[str] | None = None  # None = all ingresses
    start_jitter: float = 0.05  # uniform start spread (seconds)

    def __post_init__(self) -> None:
        if self.n_zombies < 0:
            raise ValueError("n_zombies must be >= 0")
        check_non_negative("start_time", self.start_time)
        check_non_negative("start_jitter", self.start_jitter)
        if self.stop_time is not None and self.stop_time < self.start_time:
            raise ValueError("stop_time must be >= start_time")


class AttackScenario:
    """Instantiated zombies plus their schedule."""

    def __init__(
        self,
        topology: "Topology",
        config: AttackScenarioConfig,
        victim_port: int,
        rng,
    ) -> None:
        self.topology = topology
        self.config = config
        self.zombies: list[Zombie] = []
        victim_ip = topology.victim_host.address

        ingress_names = (
            config.ingress_subset
            if config.ingress_subset is not None
            else list(topology.ingress_names)
        )
        if config.n_zombies > 0 and not ingress_names:
            raise ValueError("no ingress routers available for zombies")
        for name in ingress_names:
            if name not in topology.ingress_names:
                raise ValueError(f"unknown ingress router: {name}")

        for i in range(config.n_zombies):
            ingress = ingress_names[i % len(ingress_names)]
            host_name = f"src{topology.ingress_names.index(ingress)}"
            host = topology.hosts[host_name]
            zombie = Zombie(
                sim=topology.sim,
                host=host,
                victim_ip=victim_ip,
                victim_port=victim_port,
                config=config.zombie,
                address_space=topology.address_space,
                rng=rng,
            )
            self.zombies.append(zombie)

        self._rng = rng
        self._scheduled = False

    @property
    def atr_ground_truth(self) -> set[str]:
        """Ingress routers that actually host zombies (the true ATR set)."""
        names: set[str] = set()
        ingress_names = (
            self.config.ingress_subset
            if self.config.ingress_subset is not None
            else list(self.topology.ingress_names)
        )
        for i in range(len(self.zombies)):
            names.add(ingress_names[i % len(ingress_names)])
        return names

    def attack_flow_hashes(self) -> set[int]:
        """Wire-flow hashes of stable-source zombies (rotators excluded)."""
        return {
            z.wire_flow.hashed() for z in self.zombies if not z.rotates_sources
        }

    def schedule(self) -> None:
        """Arm start (and optional stop) times on the simulator clock."""
        if self._scheduled:
            raise RuntimeError("scenario already scheduled")
        self._scheduled = True
        sim = self.topology.sim
        for zombie in self.zombies:
            jitter = (
                float(self._rng.random()) * self.config.start_jitter
                if self.config.start_jitter > 0
                else 0.0
            )
            start_at = self.config.start_time + jitter
            zombie.start(at=start_at)
            if self.config.stop_time is not None:
                sim.schedule_at(self.config.stop_time, zombie.stop)

    def total_attack_packets_sent(self) -> int:
        """Ground-truth attack volume emitted so far."""
        return sum(z.stats.packets_sent for z in self.zombies)
