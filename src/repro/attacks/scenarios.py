"""Attack scenarios: placing and scheduling zombies across the domain.

A scenario takes a built :class:`~repro.sim.topology.Topology`, a zombie
count, and per-zombie behaviour, and instantiates the zombies on source
hosts spread over the ingress routers (round-robin by default, or
concentrated on a subset — the paper's ATR identification only flags
ingresses that actually carry attack flows).

Experiment-facing attacks live in the :data:`ATTACKS` registry: each
entry turns an :class:`~repro.experiments.config.ExperimentConfig` into
an (unscheduled) :class:`AttackScenario`.  New attack shapes register
here and become reachable by name (``ExperimentConfig(attack="...")``)
with no edits to the scenario composer, the config, or the CLI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.attacks.zombie import Zombie, ZombieConfig
from repro.util.registry import Registry
from repro.util.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig
    from repro.sim.topology import Topology

#: Attack builders of type ``(Topology, ExperimentConfig, rng,
#: **attack_args) -> AttackScenario`` — the config's ``attack_args``
#: dict arrives as keyword arguments.  The composer schedules the
#: returned scenario.
ATTACKS: "Registry[Callable[..., AttackScenario]]" = Registry("attack")


@dataclass
class AttackScenarioConfig:
    """How many zombies, where, and when."""

    n_zombies: int = 10
    zombie: ZombieConfig = field(default_factory=ZombieConfig)
    start_time: float = 1.0
    stop_time: float | None = None  # None = never stops
    ingress_subset: list[str] | None = None  # None = all ingresses
    start_jitter: float = 0.05  # uniform start spread (seconds)

    def __post_init__(self) -> None:
        if self.n_zombies < 0:
            raise ValueError("n_zombies must be >= 0")
        check_non_negative("start_time", self.start_time)
        check_non_negative("start_jitter", self.start_jitter)
        if self.stop_time is not None and self.stop_time < self.start_time:
            raise ValueError("stop_time must be >= start_time")


class AttackScenario:
    """Instantiated zombies plus their schedule."""

    def __init__(
        self,
        topology: "Topology",
        config: AttackScenarioConfig,
        victim_port: int,
        rng,
    ) -> None:
        self.topology = topology
        self.config = config
        self.zombies: list[Zombie] = []
        victim_ip = topology.victim_host.address

        ingress_names = (
            config.ingress_subset
            if config.ingress_subset is not None
            else list(topology.ingress_names)
        )
        if config.n_zombies > 0 and not ingress_names:
            raise ValueError("no ingress routers available for zombies")
        for name in ingress_names:
            if name not in topology.ingress_names:
                raise ValueError(f"unknown ingress router: {name}")

        # Every zombie draws from this one shared stream, so tick jitter
        # cannot be precomputed per sender — but when jitter is the ONLY
        # in-run consumer (steady CBR, spoofed source fixed per flow) the
        # draws can be prefetched and served in the same global tick
        # order.  Rotating spoofers and on-off phase draws interleave on
        # the stream per packet/phase, so those configurations keep the
        # direct scalar draws.
        zc = config.zombie
        jitter_buffer = None
        if zc.jitter > 0 and not zc.pulsing and not zc.spoofing.rotate_per_packet:
            from repro.util.rng import UniformBuffer

            jitter_buffer = UniformBuffer(rng)

        for i in range(config.n_zombies):
            ingress = ingress_names[i % len(ingress_names)]
            host_name = f"src{topology.ingress_names.index(ingress)}"
            host = topology.hosts[host_name]
            zombie = Zombie(
                sim=topology.sim,
                host=host,
                victim_ip=victim_ip,
                victim_port=victim_port,
                config=config.zombie,
                address_space=topology.address_space,
                rng=rng,
                jitter_buffer=jitter_buffer,
            )
            self.zombies.append(zombie)

        self._rng = rng
        self._scheduled = False

    @property
    def atr_ground_truth(self) -> set[str]:
        """Ingress routers that actually host zombies (the true ATR set)."""
        names: set[str] = set()
        ingress_names = (
            self.config.ingress_subset
            if self.config.ingress_subset is not None
            else list(self.topology.ingress_names)
        )
        for i in range(len(self.zombies)):
            names.add(ingress_names[i % len(ingress_names)])
        return names

    def attack_flow_hashes(self) -> set[int]:
        """Wire-flow hashes of stable-source zombies (rotators excluded)."""
        return {
            z.wire_flow.hashed() for z in self.zombies if not z.rotates_sources
        }

    def schedule(self) -> None:
        """Arm start (and optional stop) times on the simulator clock."""
        if self._scheduled:
            raise RuntimeError("scenario already scheduled")
        self._scheduled = True
        sim = self.topology.sim
        for zombie in self.zombies:
            jitter = (
                float(self._rng.random()) * self.config.start_jitter
                if self.config.start_jitter > 0
                else 0.0
            )
            start_at = self.config.start_time + jitter
            zombie.start(at=start_at)
            if self.config.stop_time is not None:
                sim.schedule_at(self.config.stop_time, zombie.stop)

    def total_attack_packets_sent(self) -> int:
        """Ground-truth attack volume emitted so far."""
        return sum(z.stats.packets_sent for z in self.zombies)


# --------------------------------------------------------------------------
# Registry builders: ExperimentConfig -> AttackScenario.


def _scenario(
    topology: "Topology",
    config: "ExperimentConfig",
    rng,
    zombie: ZombieConfig,
    **overrides,
) -> AttackScenario:
    """Wire one scenario, routing ``attack_args`` overrides by name.

    An override whose key is an :class:`AttackScenarioConfig` field
    (``ingress_subset``, ``stop_time``, ...) lands there; a
    :class:`ZombieConfig` field (``rate_bps``, ``jitter``, ...) replaces
    the per-zombie behaviour.  Unknown keys raise TypeError.
    """
    scenario_fields = {f.name for f in dataclasses.fields(AttackScenarioConfig)}
    zombie_fields = {f.name for f in dataclasses.fields(ZombieConfig)}
    scenario_kwargs = dict(
        n_zombies=config.n_zombies,
        start_time=config.attack_start,
    )
    zombie_overrides = {}
    for key, value in overrides.items():
        if key == "zombie":
            raise TypeError("override zombie fields directly, not 'zombie'")
        if key in scenario_fields:
            scenario_kwargs[key] = value
        elif key in zombie_fields:
            zombie_overrides[key] = value
        else:
            raise TypeError(f"unknown attack arg {key!r}")
    if zombie_overrides:
        zombie = dataclasses.replace(zombie, **zombie_overrides)
    return AttackScenario(
        topology,
        AttackScenarioConfig(zombie=zombie, **scenario_kwargs),
        victim_port=config.victim_port,
        rng=rng,
    )


@ATTACKS.register("flood")
def _build_flood(topology, config, rng, **overrides) -> AttackScenario:
    """Constant-rate UDP flood at R per zombie (Table II); honours the
    legacy ``pulsing_attack`` flag for exponential on-off bursts."""
    return _scenario(topology, config, rng, ZombieConfig(
        rate_bps=config.rate_bps,
        packet_size=config.packet_size,
        spoofing=config.spoofing,
        pulsing=config.pulsing_attack,
        mean_on=config.pulse_on,
        mean_off=config.pulse_off,
    ), **overrides)


@ATTACKS.register("pulsing", aliases=("on_off", "on-off"))
def _build_pulsing(topology, config, rng, **overrides) -> AttackScenario:
    """Shrew-style on-off zombies: exponential bursts of ``pulse_on``
    mean seconds separated by ``pulse_off`` mean seconds of silence."""
    return _scenario(topology, config, rng, ZombieConfig(
        rate_bps=config.rate_bps,
        packet_size=config.packet_size,
        spoofing=config.spoofing,
        pulsing=True,
        mean_on=config.pulse_on,
        mean_off=config.pulse_off,
    ), **overrides)


@ATTACKS.register("pulse_train", aliases=("pulse-train", "square_wave"))
def _build_pulse_train(topology, config, rng, **overrides) -> AttackScenario:
    """Deterministic duty-cycled zombies: exactly ``pulse_on`` seconds on,
    ``pulse_off`` seconds off, probing MAFIC's verdict-timer weakness (a
    flow silent across its probe window is judged responsive)."""
    return _scenario(topology, config, rng, ZombieConfig(
        rate_bps=config.rate_bps,
        packet_size=config.packet_size,
        spoofing=config.spoofing,
        pulsing=True,
        mean_on=config.pulse_on,
        mean_off=config.pulse_off,
        pulse_train=True,
    ), **overrides)
