"""IP source-address spoofing models.

Each model answers: what does a zombie write into the source-IP field?

* ``NONE`` — the zombie's true address (no spoofing).
* ``LEGIT_SUBNET`` — a random *valid* address drawn from the domain's
  allocated subnets ("legitimate" in the paper's sense: a real subnet's
  address, not the true sender).
* ``ILLEGAL`` — an address outside every allocated subnet or in a
  reserved range; MAFIC's PDT shortcut kills these on sight.
* ``MIXED`` — per-flow Bernoulli choice between LEGIT_SUBNET and
  ILLEGAL, the "somewhere in between" regime the paper targets.

``rotate_per_packet`` makes the spoofed source change on every packet
instead of per flow; since MAFIC tracks flows by the 4-tuple, rotation
turns one zombie into a stream of one-packet flows (a stress ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable

from repro.sim.packet import FlowKey, Packet
from repro.util.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.address import AddressSpace


class SpoofMode(Enum):
    """Which spoofing regime a zombie uses."""

    NONE = "none"
    LEGIT_SUBNET = "legit_subnet"
    ILLEGAL = "illegal"
    MIXED = "mixed"


@dataclass
class SpoofingModel:
    """Configuration of a spoofer."""

    mode: SpoofMode = SpoofMode.LEGIT_SUBNET
    illegal_fraction: float = 0.25  # MIXED: probability a flow uses ILLEGAL
    rotate_per_packet: bool = False

    def __post_init__(self) -> None:
        check_probability("illegal_fraction", self.illegal_fraction)


def _draw_address(
    model: SpoofingModel, space: "AddressSpace", rng, true_address: int
) -> int:
    if model.mode is SpoofMode.NONE:
        return true_address
    if model.mode is SpoofMode.LEGIT_SUBNET:
        return int(space.random_legal_address(rng))
    if model.mode is SpoofMode.ILLEGAL:
        return int(space.random_illegal_address(rng))
    # MIXED
    if float(rng.random()) < model.illegal_fraction:
        return int(space.random_illegal_address(rng))
    return int(space.random_legal_address(rng))


def make_spoofer(
    model: SpoofingModel,
    space: "AddressSpace",
    rng,
    true_address: int,
) -> Callable[[Packet], Packet]:
    """Build the per-packet source rewriter a zombie installs.

    With ``rotate_per_packet=False`` (default) the spoofed source is drawn
    once and every packet of the flow carries it, so the flow keeps a
    stable 4-tuple.  With rotation, every packet gets a fresh source —
    and hence a fresh flow identity.
    """
    if not model.rotate_per_packet:
        from repro.perf import FLAGS

        fixed = _draw_address(model, space, rng, true_address)
        # Every packet of the flow carries the sender's one FlowKey, so
        # the rewritten key is constant too: build it once and reuse it
        # (keyed on input identity, in case a caller varies the flow).
        cache: dict[FlowKey, FlowKey] | None = (
            {} if FLAGS.hot_path_caches else None
        )

        def stable_spoof(packet: Packet) -> Packet:
            flow = packet.flow
            spoofed = cache.get(flow) if cache is not None else None
            if spoofed is None:
                spoofed = FlowKey(
                    fixed, flow.dst_ip, flow.src_port, flow.dst_port
                )
                if cache is not None:
                    cache[flow] = spoofed
            packet.flow = spoofed
            return packet

        return stable_spoof

    def rotating_spoof(packet: Packet) -> Packet:
        addr = _draw_address(model, space, rng, true_address)
        packet.flow = FlowKey(
            addr, packet.flow.dst_ip, packet.flow.src_port, packet.flow.dst_port
        )
        return packet

    return rotating_spoof
