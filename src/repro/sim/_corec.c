/* Compiled engine core: Event / SeriesEvent / Simulator in C.
 *
 * A hand-written CPython extension mirroring repro/sim/engine.py
 * statement for statement where it matters: both queue backends (binary
 * heap and calendar queue), series events, the pooled fire-and-forget
 * path (schedule_anon), and lazy postpone.  The contract is *bit-exact
 * equivalence* with the pure-Python engine — same (time, priority, seq)
 * total order, same seq draws on every path (including error paths:
 * validation happens before the seq draw, exactly like the pure code),
 * same counters in queue_stats(), same exception types and messages.
 *
 * The golden-master suite and the scheduler fuzz test pin this: any
 * divergence from engine.py is a bug here, not a tolerance.
 *
 * Built optionally (setup.py marks the extension optional); the selector
 * in repro/sim/_core.py falls back to the pure engine when this module
 * is absent or REPRO_NO_COMPILED is set.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>
#include <string.h>

/* ---------------------------------------------------------------- tuning */

#define COMPACT_MIN_DEAD 64   /* never compact below this many dead */
#define EV_POOL_MAX 4096      /* free-list cap per simulator */

#define CAL_MIN_BUCKETS 64
#define CAL_MAX_BUCKETS (1 << 15)
#define CAL_MIN_WIDTH 1e-9
#define CAL_MAX_WIDTH 1e6
#define CAL_INIT_BUCKETS 256
#define CAL_INIT_WIDTH (1.0 / 1024.0)

enum { EV_PLAIN = 0, EV_POOLED = 1, EV_SERIES = 2 };
enum { BACKEND_HEAP = 0, BACKEND_CALENDAR = 1 };

/* ------------------------------------------------------------- entries */

/* One queued entry: the (time, priority, seq) tuple of the pure engine,
 * flattened into a struct.  `ev` is a strong reference. */
typedef struct {
    double time;
    long prio;
    long long seq;
    PyObject *ev;
} Entry;

/* A growable Entry array, used both as a binary heap (heap backend,
 * calendar buckets, overflow) and as a plain vector (resize staging). */
typedef struct {
    Entry *a;
    Py_ssize_t len;
    Py_ssize_t cap;
} EVec;

static void
evec_init(EVec *v)
{
    v->a = NULL;
    v->len = 0;
    v->cap = 0;
}

static void
evec_free(EVec *v)
{
    PyMem_Free(v->a);
    v->a = NULL;
    v->len = 0;
    v->cap = 0;
}

static int
evec_reserve(EVec *v, Py_ssize_t need)
{
    if (need <= v->cap)
        return 0;
    Py_ssize_t cap = v->cap ? v->cap : 8;
    while (cap < need)
        cap += cap;
    Entry *a = (Entry *)PyMem_Realloc(v->a, (size_t)cap * sizeof(Entry));
    if (a == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    v->a = a;
    v->cap = cap;
    return 0;
}

static inline int
entry_lt(const Entry *x, const Entry *y)
{
    if (x->time != y->time)
        return x->time < y->time;
    if (x->prio != y->prio)
        return x->prio < y->prio;
    return x->seq < y->seq;
}

/* Binary-heap ops over an EVec; same sift algorithm as heapq. */
static int
eheap_push(EVec *v, Entry e)
{
    if (evec_reserve(v, v->len + 1) < 0)
        return -1;
    Py_ssize_t pos = v->len++;
    Entry *a = v->a;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(&e, &a[parent]))
            break;
        a[pos] = a[parent];
        pos = parent;
    }
    a[pos] = e;
    return 0;
}

/* Pop the min entry; caller owns the returned reference. */
static Entry
eheap_pop(EVec *v)
{
    Entry *a = v->a;
    Entry top = a[0];
    Py_ssize_t n = --v->len;
    if (n > 0) {
        Entry last = a[n];
        Py_ssize_t pos = 0, child;
        while ((child = 2 * pos + 1) < n) {
            if (child + 1 < n && entry_lt(&a[child + 1], &a[child]))
                child += 1;
            if (!entry_lt(&a[child], &last))
                break;
            a[pos] = a[child];
            pos = child;
        }
        a[pos] = last;
    }
    return top;
}

/* Append without sifting (valid only when e sorts >= every element, as
 * in ascending migration from the overflow heap). */
static int
evec_append(EVec *v, Entry e)
{
    if (evec_reserve(v, v->len + 1) < 0)
        return -1;
    v->a[v->len++] = e;
    return 0;
}

static void
eheap_heapify(EVec *v)
{
    Py_ssize_t n = v->len;
    Entry *a = v->a;
    for (Py_ssize_t i = n / 2 - 1; i >= 0; i--) {
        Entry item = a[i];
        Py_ssize_t pos = i, child;
        while ((child = 2 * pos + 1) < n) {
            if (child + 1 < n && entry_lt(&a[child + 1], &a[child]))
                child += 1;
            if (!entry_lt(&a[child], &item))
                break;
            a[pos] = a[child];
            pos = child;
        }
        a[pos] = item;
    }
}

/* --------------------------------------------------------------- types */

typedef struct {
    PyObject_HEAD
    double time;
    long priority;
    long long seq;
    PyObject *fn;      /* NULL = cancelled or fired */
    PyObject *args;    /* tuple; NULL means () */
    PyObject *sim;     /* owning Simulator (strong ref; cycle via queue) */
    PyObject *times;   /* list of floats, series only */
    Py_ssize_t index;  /* series: position currently queued / just fired */
    int kind;          /* EV_PLAIN / EV_POOLED / EV_SERIES */
    char stop_flag;    /* series: end after the current firing */
    char queued;       /* series: an entry for this handle is in the queue */
} CoreEvent;

typedef struct {
    PyObject_HEAD
    double now;
    long long next_seq;
    long long live;          /* non-cancelled entries still queued */
    int running;
    int stopped;
    int backend;
    long long events_executed;
    /* shared queue counters (queue_stats) */
    long long dead;
    long long size;
    long long peak;
    long long pushes;
    long long resizes;
    /* heap backend */
    EVec heap;
    /* calendar backend */
    EVec *buckets;
    Py_ssize_t nbuckets;
    double width, inv_width;
    int anchored;
    double start, end;
    Py_ssize_t hint;
    long long wheel_count;   /* entries (live + dead) in the wheel */
    EVec over;               /* far-future overflow heap */
    long long grow_at, shrink_at;
    /* pooled fire-and-forget handles */
    PyObject **ev_pool;      /* lazily allocated, EV_POOL_MAX slots */
    Py_ssize_t ev_pool_len;
    long long ev_created, ev_reused;
} CoreSim;

static PyTypeObject Event_Type;
static PyTypeObject SeriesEvent_Type;
static PyTypeObject Simulator_Type;

static PyObject *empty_tuple;   /* shared (); also the pooled `times` marker */

static int cal_push_core(CoreSim *sim, Entry e);
static int cal_resize(CoreSim *sim, Py_ssize_t n);
static void sim_note_cancel(CoreSim *sim);

/* ---------------------------------------------------------------- Event */

/* Cancel bookkeeping shared by every kind: null the callback in place,
 * tell the simulator (live--, dead++, maybe compact).  Mirrors
 * Event.cancel + Simulator._on_cancel in the pure engine. */
static void
event_cancel_impl(CoreEvent *ev)
{
    if (ev->fn == NULL)
        return;
    Py_CLEAR(ev->fn);
    Py_CLEAR(ev->args);
    if (ev->sim != NULL) {
        CoreSim *sim = (CoreSim *)ev->sim;
        sim->live--;
        sim_note_cancel(sim);
    }
}

static PyObject *
event_cancel(PyObject *self, PyObject *Py_UNUSED(ignored))
{
    CoreEvent *ev = (CoreEvent *)self;
    if (ev->kind == EV_SERIES) {
        /* SeriesEvent.cancel: drop the queued entry, or stop mid-fire. */
        if (ev->fn != NULL) {
            if (ev->queued)
                event_cancel_impl(ev);
            else
                ev->stop_flag = 1;
        }
    }
    else {
        event_cancel_impl(ev);
    }
    Py_RETURN_NONE;
}

static PyObject *
series_stop(PyObject *self, PyObject *Py_UNUSED(ignored))
{
    CoreEvent *ev = (CoreEvent *)self;
    if (ev->queued) {
        if (ev->fn != NULL)
            event_cancel_impl(ev);
    }
    else {
        ev->stop_flag = 1;
    }
    Py_RETURN_NONE;
}

static PyObject *
series_extend(PyObject *self, PyObject *more_times)
{
    CoreEvent *ev = (CoreEvent *)self;
    PyObject *times = ev->times;
    if (times == NULL || !PyList_CheckExact(times)) {
        PyErr_SetString(PyExc_ValueError, "not a series event");
        return NULL;
    }
    /* [float(t) for t in more_times] */
    PyObject *fresh = PySequence_List(more_times);
    if (fresh == NULL)
        return NULL;
    Py_ssize_t n = PyList_GET_SIZE(fresh);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *f = PyNumber_Float(PyList_GET_ITEM(fresh, i));
        if (f == NULL) {
            Py_DECREF(fresh);
            return NULL;
        }
        PyList_SET_ITEM(fresh, i, f);   /* steals f, drops the old item */
    }
    /* Validate everything before mutating: nothing is appended unless
     * every time passes (same contract as the pure engine). */
    double prev = PyFloat_AsDouble(
        PyList_GET_ITEM(times, PyList_GET_SIZE(times) - 1));
    if (prev == -1.0 && PyErr_Occurred()) {
        Py_DECREF(fresh);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        double t = PyFloat_AS_DOUBLE(PyList_GET_ITEM(fresh, i));
        if (!(prev <= t && t < INFINITY)) {
            PyObject *to = PyFloat_FromDouble(t);
            PyObject *po = PyFloat_FromDouble(prev);
            PyErr_Format(PyExc_ValueError,
                         "series times must be finite and ascending "
                         "(got %S after %S)", to, po);
            Py_XDECREF(to);
            Py_XDECREF(po);
            Py_DECREF(fresh);
            return NULL;
        }
        prev = t;
    }
    /* Prune the consumed prefix (current time stays at position 0). */
    if (ev->index) {
        if (PyList_SetSlice(times, 0, ev->index, NULL) < 0) {
            Py_DECREF(fresh);
            return NULL;
        }
        ev->index = 0;
    }
    Py_ssize_t base = PyList_GET_SIZE(times);
    if (PyList_SetSlice(times, base, base, fresh) < 0) {
        Py_DECREF(fresh);
        return NULL;
    }
    Py_DECREF(fresh);
    Py_RETURN_NONE;
}

static PyObject *
event_get_fn(PyObject *self, void *Py_UNUSED(closure))
{
    CoreEvent *ev = (CoreEvent *)self;
    if (ev->fn == NULL)
        Py_RETURN_NONE;
    return Py_NewRef(ev->fn);
}

static PyObject *
event_get_args(PyObject *self, void *Py_UNUSED(closure))
{
    CoreEvent *ev = (CoreEvent *)self;
    if (ev->args == NULL)
        return Py_NewRef(empty_tuple);
    return Py_NewRef(ev->args);
}

static PyObject *
event_get_cancelled(PyObject *self, void *Py_UNUSED(closure))
{
    CoreEvent *ev = (CoreEvent *)self;
    return PyBool_FromLong(ev->fn == NULL);
}

static PyObject *
event_get_times(PyObject *self, void *Py_UNUSED(closure))
{
    CoreEvent *ev = (CoreEvent *)self;
    switch (ev->kind) {
    case EV_PLAIN:
        Py_RETURN_NONE;
    case EV_POOLED:
        /* Non-None marker, like the pure _PooledEvent.times sentinel. */
        return Py_NewRef(empty_tuple);
    default:
        if (ev->times == NULL)
            Py_RETURN_NONE;
        return Py_NewRef(ev->times);
    }
}

static PyObject *
event_repr(PyObject *self)
{
    CoreEvent *ev = (CoreEvent *)self;
    PyObject *t = PyFloat_FromDouble(ev->time);
    if (t == NULL)
        return NULL;
    PyObject *r = PyUnicode_FromFormat(
        "Event(t=%S, prio=%ld, %s)", t, ev->priority,
        ev->fn == NULL ? "cancelled" : "pending");
    Py_DECREF(t);
    return r;
}

static int
event_traverse(PyObject *self, visitproc visit, void *arg)
{
    CoreEvent *ev = (CoreEvent *)self;
    Py_VISIT(ev->fn);
    Py_VISIT(ev->args);
    Py_VISIT(ev->sim);
    Py_VISIT(ev->times);
    return 0;
}

static int
event_clear(PyObject *self)
{
    CoreEvent *ev = (CoreEvent *)self;
    Py_CLEAR(ev->fn);
    Py_CLEAR(ev->args);
    Py_CLEAR(ev->sim);
    Py_CLEAR(ev->times);
    return 0;
}

static void
event_dealloc(PyObject *self)
{
    PyObject_GC_UnTrack(self);
    event_clear(self);
    Py_TYPE(self)->tp_free(self);
}

static PyMemberDef event_members[] = {
    {"time", T_DOUBLE, offsetof(CoreEvent, time), READONLY,
     "Absolute fire time (seconds)."},
    {"priority", T_LONG, offsetof(CoreEvent, priority), READONLY,
     "Tie-break priority (lower fires first)."},
    {"seq", T_LONGLONG, offsetof(CoreEvent, seq), READONLY,
     "Monotone scheduling-order tie-breaker."},
    {NULL}
};

static PyGetSetDef event_getset[] = {
    {"fn", event_get_fn, NULL, "The callback, or None once cancelled/fired.", NULL},
    {"args", event_get_args, NULL, "Callback arguments.", NULL},
    {"cancelled", event_get_cancelled, NULL,
     "True once cancel() has been called (or the event ran).", NULL},
    {"times", event_get_times, NULL,
     "Series schedule (list), or None for a plain event.", NULL},
    {NULL}
};

static PyMethodDef event_methods[] = {
    {"cancel", event_cancel, METH_NOARGS,
     "Mark the event as cancelled; it is skipped when popped."},
    {NULL}
};

static PyMemberDef series_members[] = {
    {"index", T_PYSSIZET, offsetof(CoreEvent, index), READONLY,
     "Position currently queued (or just fired) in times."},
    {NULL}
};

static PyMethodDef series_methods[] = {
    {"extend", series_extend, METH_O,
     "Append further ascending fire times to the schedule."},
    {"stop", series_stop, METH_NOARGS,
     "End the series: no further firings."},
    {NULL}
};

static PyTypeObject Event_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._corec.Event",
    .tp_basicsize = sizeof(CoreEvent),
    .tp_dealloc = event_dealloc,
    .tp_repr = event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Handle to one scheduled callback (compiled core).",
    .tp_traverse = event_traverse,
    .tp_clear = event_clear,
    .tp_methods = event_methods,
    .tp_members = event_members,
    .tp_getset = event_getset,
    .tp_new = PyType_GenericNew,
};

static PyTypeObject SeriesEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._corec.SeriesEvent",
    .tp_basicsize = sizeof(CoreEvent),
    .tp_dealloc = event_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC | Py_TPFLAGS_BASETYPE,
    .tp_doc = "One handle that fires at every time of a precomputed schedule.",
    .tp_traverse = event_traverse,
    .tp_clear = event_clear,
    .tp_methods = series_methods,
    .tp_members = series_members,
    .tp_base = &Event_Type,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------ queue plumbing */

/* Heap-backend compaction: drop every cancelled entry, re-file stale
 * (postponed) ones at their true deadlines, re-heapify. */
static void
heap_compact(CoreSim *sim)
{
    EVec *heap = &sim->heap;
    Entry *a = heap->a;
    Py_ssize_t out = 0;
    for (Py_ssize_t i = 0; i < heap->len; i++) {
        CoreEvent *ev = (CoreEvent *)a[i].ev;
        if (ev->fn == NULL) {
            Py_DECREF((PyObject *)ev);
            continue;
        }
        if (a[i].seq != ev->seq) {
            a[i].time = ev->time;
            a[i].prio = ev->priority;
            a[i].seq = ev->seq;
        }
        a[out++] = a[i];
    }
    heap->len = out;
    eheap_heapify(heap);
    sim->dead = 0;
    sim->size = out;
}

static void
sim_note_cancel(CoreSim *sim)
{
    sim->dead++;
    if (sim->dead > COMPACT_MIN_DEAD && sim->dead > sim->live) {
        if (sim->backend == BACKEND_HEAP)
            heap_compact(sim);
        else if (cal_resize(sim, sim->nbuckets) < 0)
            PyErr_Clear();   /* compaction is advisory; OOM only */
    }
}

/* ------------------------------------------------------ calendar queue */

static void
cal_anchor(CoreSim *sim, double t)
{
    double width = sim->width;
    sim->start = floor(t / width) * width;
    sim->end = sim->start + (double)sim->nbuckets * width;
    sim->hint = 0;
    sim->anchored = 1;
}

/* Pull overflow entries that now fall inside the wheel window. */
static int
cal_migrate(CoreSim *sim)
{
    EVec *over = &sim->over;
    double end = sim->end;
    double start = sim->start;
    double inv_width = sim->inv_width;
    Py_ssize_t n = sim->nbuckets;
    while (over->len && over->a[0].time < end) {
        Entry e = eheap_pop(over);
        CoreEvent *ev = (CoreEvent *)e.ev;
        if (ev->fn == NULL) {
            sim->dead--;
            sim->size--;
            Py_DECREF(e.ev);
            continue;
        }
        Py_ssize_t i = (Py_ssize_t)((e.time - start) * inv_width);
        if (i < 0)
            i = 0;
        else if (i >= n)
            i = n - 1;
        /* Ascending heap-pops appended to a bucket keep the bucket-heap
         * invariant (a sorted suffix is a valid heap tail). */
        if (evec_append(&sim->buckets[i], e) < 0) {
            Py_DECREF(e.ev);
            return -1;
        }
        sim->wheel_count++;
    }
    return 0;
}

/* Bucket width ~ 2x the median inter-event gap near the head (same
 * robust tuning rule as the pure engine: sort all times, look at the
 * soonest 128, drop zero gaps, take the median, clamp). */
static int
cmp_double(const void *pa, const void *pb)
{
    double a = *(const double *)pa, b = *(const double *)pb;
    return (a > b) - (a < b);
}

static double
cal_tune_width(CoreSim *sim, EVec *entries)
{
    Py_ssize_t n = entries->len;
    if (n < 2)
        return sim->width;
    double *times = (double *)PyMem_Malloc((size_t)n * sizeof(double));
    if (times == NULL)
        return sim->width;   /* tuning is best-effort; keep the old width */
    for (Py_ssize_t i = 0; i < n; i++)
        times[i] = entries->a[i].time;
    qsort(times, (size_t)n, sizeof(double), cmp_double);
    Py_ssize_t head = n < 128 ? n : 128;
    Py_ssize_t ngaps = 0;
    double *gaps = times;   /* reuse in place: gaps fit before their sources */
    for (Py_ssize_t i = 1; i < head; i++) {
        double g = times[i] - times[i - 1];
        if (g > 0.0)
            gaps[ngaps++] = g;
    }
    if (ngaps == 0) {
        PyMem_Free(times);
        return sim->width;
    }
    qsort(gaps, (size_t)ngaps, sizeof(double), cmp_double);
    double width = 2.0 * gaps[ngaps / 2];
    PyMem_Free(times);
    if (width < CAL_MIN_WIDTH)
        width = CAL_MIN_WIDTH;
    else if (width > CAL_MAX_WIDTH)
        width = CAL_MAX_WIDTH;
    return width;
}

/* Rebuild with n buckets and a re-tuned width (purges dead entries).
 * Mirrors _CalendarQueue._resize, including the counter save/restore:
 * re-filing existing entries is not churn. */
static int
cal_resize(CoreSim *sim, Py_ssize_t n)
{
    /* Collect live entries (re-filing stale ones); transfer the refs. */
    EVec entries;
    evec_init(&entries);
    Py_ssize_t total = sim->wheel_count + sim->over.len;
    if (total > 0 && evec_reserve(&entries, total) < 0)
        return -1;
    for (Py_ssize_t b = 0; b < sim->nbuckets; b++) {
        EVec *bucket = &sim->buckets[b];
        for (Py_ssize_t i = 0; i < bucket->len; i++) {
            Entry e = bucket->a[i];
            CoreEvent *ev = (CoreEvent *)e.ev;
            if (ev->fn == NULL) {
                Py_DECREF(e.ev);
                continue;
            }
            if (e.seq != ev->seq) {
                e.time = ev->time;
                e.prio = ev->priority;
                e.seq = ev->seq;
            }
            entries.a[entries.len++] = e;
        }
        bucket->len = 0;
    }
    for (Py_ssize_t i = 0; i < sim->over.len; i++) {
        Entry e = sim->over.a[i];
        CoreEvent *ev = (CoreEvent *)e.ev;
        if (ev->fn == NULL) {
            Py_DECREF(e.ev);
            continue;
        }
        if (e.seq != ev->seq) {
            e.time = ev->time;
            e.prio = ev->priority;
            e.seq = ev->seq;
        }
        entries.a[entries.len++] = e;
    }
    sim->over.len = 0;
    sim->resizes++;

    /* Reallocate the bucket array if the count changes. */
    if (n != sim->nbuckets) {
        for (Py_ssize_t b = 0; b < sim->nbuckets; b++)
            evec_free(&sim->buckets[b]);
        EVec *fresh = (EVec *)PyMem_Calloc((size_t)n, sizeof(EVec));
        if (fresh == NULL) {
            /* Roll back: keep the old geometry, re-push into it. */
            n = sim->nbuckets;
            fresh = sim->buckets;
            memset(fresh, 0, (size_t)n * sizeof(EVec));
        }
        else {
            PyMem_Free(sim->buckets);
            sim->buckets = fresh;
        }
        sim->nbuckets = n;
    }
    sim->grow_at = 2 * n;
    sim->shrink_at = n / 8;
    sim->width = cal_tune_width(sim, &entries);
    sim->inv_width = 1.0 / sim->width;
    sim->wheel_count = 0;
    sim->dead = 0;
    sim->size = 0;
    long long peak = sim->peak;
    long long pushes = sim->pushes;
    if (entries.len) {
        double tmin = entries.a[0].time;
        for (Py_ssize_t i = 1; i < entries.len; i++)
            if (entries.a[i].time < tmin)
                tmin = entries.a[i].time;
        cal_anchor(sim, tmin);
    }
    else {
        sim->anchored = 0;
    }
    int rc = 0;
    for (Py_ssize_t i = 0; i < entries.len; i++) {
        if (rc == 0 && cal_push_core(sim, entries.a[i]) < 0)
            rc = -1;   /* OOM: drop remaining refs, report below */
        else if (rc < 0)
            Py_DECREF(entries.a[i].ev);
    }
    sim->peak = peak;
    sim->pushes = pushes;
    evec_free(&entries);
    return rc;
}

/* Insert one entry (ref transferred) with full counter bookkeeping —
 * the _CalendarQueue.push of the pure engine. */
static int
cal_push_core(CoreSim *sim, Entry e)
{
    sim->pushes++;
    double t = e.time;
    if (!sim->anchored)
        cal_anchor(sim, t);
    if (t < sim->end) {
        Py_ssize_t i = (Py_ssize_t)((t - sim->start) * sim->inv_width);
        if (i < 0)
            i = 0;
        else if (i >= sim->nbuckets)
            i = sim->nbuckets - 1;
        if (eheap_push(&sim->buckets[i], e) < 0)
            return -1;
        sim->wheel_count++;
        if (i < sim->hint)
            sim->hint = i;
    }
    else {
        if (eheap_push(&sim->over, e) < 0)
            return -1;
    }
    sim->size++;
    if (sim->size > sim->peak)
        sim->peak = sim->size;
    if (sim->size - sim->dead > sim->grow_at && sim->nbuckets < CAL_MAX_BUCKETS)
        return cal_resize(sim, sim->nbuckets * 2);
    return 0;
}

/* Backend-dispatching insert (ref transferred), counters included. */
static int
sim_push_entry(CoreSim *sim, Entry e)
{
    if (sim->backend == BACKEND_HEAP) {
        if (eheap_push(&sim->heap, e) < 0)
            return -1;
        sim->pushes++;
        sim->size++;
        if (sim->size > sim->peak)
            sim->peak = sim->size;
        return 0;
    }
    return cal_push_core(sim, e);
}

/* ------------------------------------------------------------ execution */

/* Execute one popped entry (ref transferred).  Kept in lockstep with
 * the execute sections of both pure run loops: plain events null their
 * callback *before* it runs, pooled handles recycle into the free list,
 * series handles re-insert with a seq drawn *after* the callback. */
static int
exec_entry(CoreSim *sim, Entry *e)
{
    CoreEvent *ev = (CoreEvent *)e->ev;
    sim->live--;
    sim->now = e->time;
    if (ev->kind == EV_SERIES) {
        ev->queued = 0;
        PyObject *res = PyObject_Call(
            ev->fn, ev->args ? ev->args : empty_tuple, NULL);
        if (res == NULL) {
            Py_DECREF(e->ev);
            return -1;
        }
        Py_DECREF(res);
        if (!ev->stop_flag) {
            Py_ssize_t index = ev->index + 1;
            if (index < PyList_GET_SIZE(ev->times)) {
                ev->index = index;
                /* Items are exact floats (validated on entry); guard
                 * anyway in case user code mutated the exposed list. */
                PyObject *item = PyList_GET_ITEM(ev->times, index);
                double t2 = PyFloat_CheckExact(item)
                                ? PyFloat_AS_DOUBLE(item)
                                : PyFloat_AsDouble(item);
                if (t2 == -1.0 && PyErr_Occurred()) {
                    Py_DECREF(e->ev);
                    return -1;
                }
                long long seq = sim->next_seq++;
                ev->time = t2;
                ev->seq = seq;
                ev->queued = 1;
                Entry ne = {t2, e->prio, seq, e->ev};  /* ref transferred */
                if (sim_push_entry(sim, ne) < 0)
                    return -1;
                sim->live++;
            }
            else {
                Py_CLEAR(ev->fn);
                Py_DECREF(e->ev);
            }
        }
        else {
            Py_CLEAR(ev->fn);
            Py_DECREF(e->ev);
        }
    }
    else {
        PyObject *fn = ev->fn;   /* consumed; a late cancel() is a no-op */
        ev->fn = NULL;
        PyObject *res = PyObject_Call(
            fn, ev->args ? ev->args : empty_tuple, NULL);
        Py_DECREF(fn);
        if (res == NULL) {
            Py_DECREF(e->ev);
            return -1;
        }
        Py_DECREF(res);
        if (ev->kind == EV_POOLED) {
            Py_CLEAR(ev->args);
            if (sim->ev_pool != NULL && sim->ev_pool_len < EV_POOL_MAX)
                sim->ev_pool[sim->ev_pool_len++] = e->ev;  /* keep the ref */
            else
                Py_DECREF(e->ev);
        }
        else {
            Py_DECREF(e->ev);
        }
    }
    sim->events_executed++;
    return 0;
}

/* ------------------------------------------------------------ run loops */

static int
heap_run(CoreSim *sim, double limit, long long cap)
{
    long long executed = 0;
    EVec *heap = &sim->heap;
    while (!sim->stopped) {
        if (heap->len == 0)
            break;
        Entry *top = &heap->a[0];
        CoreEvent *ev = (CoreEvent *)top->ev;
        if (ev->fn == NULL) {
            Entry e = eheap_pop(heap);
            Py_DECREF(e.ev);
            sim->dead--;
            sim->size--;
            continue;
        }
        if (top->seq != ev->seq) {
            /* Stale (postponed) tuple: re-file at the true deadline
             * without executing — live/size bookkeeping nets zero. */
            Entry e = eheap_pop(heap);
            e.time = ev->time;
            e.prio = ev->priority;
            e.seq = ev->seq;
            if (eheap_push(heap, e) < 0) {
                Py_DECREF(e.ev);
                return -1;
            }
            sim->pushes++;
            continue;
        }
        if (top->time > limit)
            break;
        Entry e = eheap_pop(heap);
        sim->size--;
        if (exec_entry(sim, &e) < 0)
            return -1;
        executed++;
        if (executed >= cap)
            break;
    }
    return 0;
}

static int
cal_run(CoreSim *sim, double limit, long long cap)
{
    long long executed = 0;
    while (!sim->stopped) {
        /* -- dequeue: earliest live entry, or advance/stop ---------- */
        if (sim->wheel_count == 0) {
            EVec *over = &sim->over;
            while (over->len &&
                   ((CoreEvent *)over->a[0].ev)->fn == NULL) {
                Entry e = eheap_pop(over);
                Py_DECREF(e.ev);
                sim->dead--;
                sim->size--;
            }
            if (over->len == 0)
                break;
            cal_anchor(sim, over->a[0].time);
            if (cal_migrate(sim) < 0)
                return -1;
            continue;
        }
        Py_ssize_t n = sim->nbuckets;
        Py_ssize_t b = sim->hint;
        int have = 0, stale = 0;
        Entry e;
        while (b < n) {
            EVec *bucket = &sim->buckets[b];
            if (bucket->len == 0) {
                b++;
                continue;
            }
            Entry *best = &bucket->a[0];
            CoreEvent *ev = (CoreEvent *)best->ev;
            if (ev->fn == NULL) {   /* purge dead heads lazily */
                Entry d = eheap_pop(bucket);
                Py_DECREF(d.ev);
                sim->wheel_count--;
                sim->size--;
                sim->dead--;
                continue;
            }
            if (best->seq != ev->seq) {
                /* Stale (postponed) tuple: re-file at the true deadline;
                 * the push may resize, so restart the scan. */
                sim->hint = b;
                Entry d = eheap_pop(bucket);
                sim->wheel_count--;
                sim->size--;
                d.time = ev->time;
                d.prio = ev->priority;
                d.seq = ev->seq;
                if (cal_push_core(sim, d) < 0)
                    return -1;
                stale = 1;
                break;
            }
            sim->hint = b;
            if (best->time > limit)
                return 0;
            e = eheap_pop(bucket);
            sim->wheel_count--;
            sim->size--;
            if (sim->size - sim->dead < sim->shrink_at &&
                n > CAL_MIN_BUCKETS) {
                if (cal_resize(sim, n / 2) < 0) {
                    Py_DECREF(e.ev);
                    return -1;
                }
            }
            have = 1;
            break;
        }
        if (stale)
            continue;
        if (!have) {
            /* Scanned the whole window: wheel is (effectively) empty. */
            sim->hint = n;
            if (sim->wheel_count) {   /* defensive recount */
                long long wc = 0;
                for (Py_ssize_t i = 0; i < sim->nbuckets; i++)
                    wc += sim->buckets[i].len;
                sim->wheel_count = wc;
                if (wc)
                    sim->hint = 0;
            }
            continue;
        }
        if (exec_entry(sim, &e) < 0)
            return -1;
        executed++;
        if (executed >= cap)
            break;
    }
    return 0;
}

/* ------------------------------------------------------------ peeking */

static double
heap_first_time(CoreSim *sim)
{
    EVec *heap = &sim->heap;
    while (heap->len) {
        Entry *top = &heap->a[0];
        CoreEvent *ev = (CoreEvent *)top->ev;
        if (ev->fn == NULL) {
            Entry e = eheap_pop(heap);
            Py_DECREF(e.ev);
            sim->dead--;
            sim->size--;
        }
        else if (top->seq != ev->seq) {
            Entry e = eheap_pop(heap);
            e.time = ev->time;
            e.prio = ev->priority;
            e.seq = ev->seq;
            if (eheap_push(heap, e) < 0) {
                Py_DECREF(e.ev);
                return -2.0;   /* OOM sentinel; caller raises */
            }
            sim->pushes++;
        }
        else {
            return top->time;
        }
    }
    return INFINITY;
}

static double
cal_first_time(CoreSim *sim)
{
    for (;;) {
        if (sim->wheel_count == 0) {
            EVec *over = &sim->over;
            while (over->len &&
                   ((CoreEvent *)over->a[0].ev)->fn == NULL) {
                Entry e = eheap_pop(over);
                Py_DECREF(e.ev);
                sim->dead--;
                sim->size--;
            }
            if (over->len == 0)
                return INFINITY;
            cal_anchor(sim, over->a[0].time);
            if (cal_migrate(sim) < 0)
                return -2.0;
            continue;
        }
        Py_ssize_t n = sim->nbuckets;
        Py_ssize_t b = sim->hint;
        int stale = 0;
        while (b < n) {
            EVec *bucket = &sim->buckets[b];
            if (bucket->len == 0) {
                b++;
                continue;
            }
            Entry *best = &bucket->a[0];
            CoreEvent *ev = (CoreEvent *)best->ev;
            if (ev->fn == NULL) {
                Entry d = eheap_pop(bucket);
                Py_DECREF(d.ev);
                sim->wheel_count--;
                sim->size--;
                sim->dead--;
                continue;
            }
            if (best->seq != ev->seq) {
                sim->hint = b;
                Entry d = eheap_pop(bucket);
                sim->wheel_count--;
                sim->size--;
                d.time = ev->time;
                d.prio = ev->priority;
                d.seq = ev->seq;
                if (cal_push_core(sim, d) < 0)
                    return -2.0;
                stale = 1;
                break;
            }
            sim->hint = b;
            return best->time;
        }
        if (stale)
            continue;
        sim->hint = n;
        if (sim->wheel_count) {
            long long wc = 0;
            for (Py_ssize_t i = 0; i < sim->nbuckets; i++)
                wc += sim->buckets[i].len;
            sim->wheel_count = wc;
            if (wc)
                sim->hint = 0;
        }
    }
}

/* ----------------------------------------------------------- Simulator */

/* float(obj) — accepts exactly what the pure engine's float() does. */
static int
as_double(PyObject *o, double *out)
{
    if (PyFloat_CheckExact(o)) {
        *out = PyFloat_AS_DOUBLE(o);
        return 0;
    }
    PyObject *f = PyNumber_Float(o);
    if (f == NULL)
        return -1;
    *out = PyFloat_AS_DOUBLE(f);
    Py_DECREF(f);
    return 0;
}

/* Lazily imported repro.perf.FLAGS (the singleton is mutated in place,
 * never rebound, so caching the object is safe). */
static PyObject *perf_flags;

static PyObject *
get_perf_flags(void)
{
    if (perf_flags == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.perf");
        if (mod == NULL)
            return NULL;
        perf_flags = PyObject_GetAttrString(mod, "FLAGS");
        Py_DECREF(mod);
    }
    return perf_flags;
}

/* Shared time/fn validation; mirrors schedule_at exactly, including the
 * messages and the one-interval check that catches NaN and +inf. */
static int
check_time_fn(CoreSim *sim, double t, PyObject *fn)
{
    if (!(sim->now <= t && t < INFINITY)) {
        if (isfinite(t)) {
            PyObject *to = PyFloat_FromDouble(t);
            PyObject *no = PyFloat_FromDouble(sim->now);
            PyErr_Format(PyExc_ValueError,
                         "cannot schedule into the past (time=%S, now=%S)",
                         to, no);
            Py_XDECREF(to);
            Py_XDECREF(no);
        }
        else {
            PyObject *to = PyFloat_FromDouble(t);
            PyErr_Format(PyExc_ValueError,
                         "event time must be finite, got %S", to);
            Py_XDECREF(to);
        }
        return -1;
    }
    if (!PyCallable_Check(fn)) {
        PyErr_SetString(PyExc_TypeError, "fn must be callable");
        return -1;
    }
    return 0;
}

/* Split (first, fn, *args, priority=0) out of a VARARGS call. */
static int
parse_sched(PyObject *args, PyObject *kwds, const char *name,
            PyObject **first, PyObject **fn, PyObject **cbargs, long *priority)
{
    Py_ssize_t n = PyTuple_GET_SIZE(args);
    if (n < 2) {
        PyErr_Format(PyExc_TypeError,
                     "%s() requires a time and a callback", name);
        return -1;
    }
    *priority = 0;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyObject *p = PyDict_GetItemString(kwds, "priority");
        if (p == NULL || PyDict_GET_SIZE(kwds) != 1) {
            PyErr_Format(PyExc_TypeError,
                         "%s() accepts only the 'priority' keyword", name);
            return -1;
        }
        *priority = PyLong_AsLong(p);
        if (*priority == -1 && PyErr_Occurred())
            return -1;
    }
    *first = PyTuple_GET_ITEM(args, 0);
    *fn = PyTuple_GET_ITEM(args, 1);
    *cbargs = PyTuple_GetSlice(args, 2, n);   /* new ref */
    return *cbargs == NULL ? -1 : 0;
}

/* The shared tail of schedule_at / schedule_anon: validate, draw ONE
 * seq, build (or recycle) the handle, insert.  `cbargs` is stolen. */
static PyObject *
sim_schedule_common(CoreSim *self, double t, PyObject *fn, PyObject *cbargs,
                    long priority, int kind)
{
    if (check_time_fn(self, t, fn) < 0) {
        Py_DECREF(cbargs);
        return NULL;
    }
    long long seq = self->next_seq++;
    CoreEvent *ev;
    if (kind == EV_POOLED && self->ev_pool_len > 0) {
        ev = (CoreEvent *)self->ev_pool[--self->ev_pool_len];
        self->ev_reused++;
    }
    else {
        PyTypeObject *tp = &Event_Type;
        ev = (CoreEvent *)tp->tp_alloc(tp, 0);
        if (ev == NULL) {
            Py_DECREF(cbargs);
            return NULL;
        }
        ev->sim = Py_NewRef((PyObject *)self);
        ev->kind = kind;
        if (kind == EV_POOLED)
            self->ev_created++;
    }
    ev->time = t;
    ev->priority = priority;
    ev->seq = seq;
    Py_XSETREF(ev->fn, Py_NewRef(fn));
    Py_XSETREF(ev->args, cbargs);   /* stolen */
    Entry e = {t, priority, seq, Py_NewRef((PyObject *)ev)};
    if (sim_push_entry(self, e) < 0) {
        Py_DECREF((PyObject *)ev);   /* the entry's ref */
        Py_DECREF((PyObject *)ev);   /* the caller's ref */
        return NULL;
    }
    self->live++;
    return (PyObject *)ev;
}

static PyObject *
sim_schedule_at(PyObject *self_o, PyObject *args, PyObject *kwds)
{
    CoreSim *self = (CoreSim *)self_o;
    PyObject *time_o, *fn, *cbargs;
    long priority;
    if (parse_sched(args, kwds, "schedule_at", &time_o, &fn, &cbargs,
                    &priority) < 0)
        return NULL;
    double t;
    if (as_double(time_o, &t) < 0) {
        Py_DECREF(cbargs);
        return NULL;
    }
    return sim_schedule_common(self, t, fn, cbargs, priority, EV_PLAIN);
}

static PyObject *
sim_schedule(PyObject *self_o, PyObject *args, PyObject *kwds)
{
    CoreSim *self = (CoreSim *)self_o;
    PyObject *delay_o, *fn, *cbargs;
    long priority;
    if (parse_sched(args, kwds, "schedule", &delay_o, &fn, &cbargs,
                    &priority) < 0)
        return NULL;
    double delay;
    if (as_double(delay_o, &delay) < 0) {
        Py_DECREF(cbargs);
        return NULL;
    }
    if (delay < 0) {
        PyErr_Format(PyExc_ValueError,
                     "cannot schedule into the past (delay=%S)", delay_o);
        Py_DECREF(cbargs);
        return NULL;
    }
    return sim_schedule_common(self, self->now + delay, fn, cbargs,
                               priority, EV_PLAIN);
}

static PyObject *
sim_schedule_anon(PyObject *self_o, PyObject *args, PyObject *kwds)
{
    CoreSim *self = (CoreSim *)self_o;
    PyObject *time_o, *fn, *cbargs;
    long priority;
    if (parse_sched(args, kwds, "schedule_anon", &time_o, &fn, &cbargs,
                    &priority) < 0)
        return NULL;
    double t;
    if (as_double(time_o, &t) < 0) {
        Py_DECREF(cbargs);
        return NULL;
    }
    /* Honour the runtime flag, like the pure engine (legacy_mode turns
     * the pool off and schedule_anon degrades to schedule_at). */
    int pooled = 1;
    PyObject *flags = get_perf_flags();
    if (flags == NULL) {
        Py_DECREF(cbargs);
        return NULL;
    }
    PyObject *on = PyObject_GetAttrString(flags, "event_pool");
    if (on == NULL) {
        Py_DECREF(cbargs);
        return NULL;
    }
    pooled = PyObject_IsTrue(on);
    Py_DECREF(on);
    if (pooled < 0) {
        Py_DECREF(cbargs);
        return NULL;
    }
    if (pooled && self->ev_pool == NULL) {
        self->ev_pool = (PyObject **)PyMem_Malloc(
            EV_POOL_MAX * sizeof(PyObject *));
        if (self->ev_pool == NULL) {
            Py_DECREF(cbargs);
            return PyErr_NoMemory();
        }
        self->ev_pool_len = 0;
    }
    return sim_schedule_common(self, t, fn, cbargs, priority,
                               pooled ? EV_POOLED : EV_PLAIN);
}

static PyObject *
sim_postpone(PyObject *self_o, PyObject *args)
{
    CoreSim *self = (CoreSim *)self_o;
    PyObject *ev_o, *time_o;
    if (!PyArg_ParseTuple(args, "OO:postpone", &ev_o, &time_o))
        return NULL;
    if (!PyObject_TypeCheck(ev_o, &Event_Type)) {
        PyErr_SetString(PyExc_ValueError,
                        "event belongs to a different simulator");
        return NULL;
    }
    CoreEvent *ev = (CoreEvent *)ev_o;
    if (ev->fn == NULL) {
        PyErr_SetString(PyExc_ValueError,
                        "cannot postpone a cancelled or fired event");
        return NULL;
    }
    if (ev->kind != EV_PLAIN) {
        PyErr_SetString(PyExc_ValueError,
                        "cannot postpone a series or pooled event");
        return NULL;
    }
    if (ev->sim != (PyObject *)self) {
        PyErr_SetString(PyExc_ValueError,
                        "event belongs to a different simulator");
        return NULL;
    }
    double t;
    if (as_double(time_o, &t) < 0)
        return NULL;
    if (ev->time <= t && t < INFINITY) {
        /* Lazy path: update the handle in place; the queued entry goes
         * stale and is silently re-filed when it surfaces. */
        ev->time = t;
        ev->seq = self->next_seq++;
        return Py_NewRef(ev_o);
    }
    /* Deadline moved earlier (or non-finite): eager cancel+reschedule —
     * still exactly one seq draw, in schedule_at. */
    PyObject *fn = Py_NewRef(ev->fn);
    PyObject *cbargs = ev->args ? Py_NewRef(ev->args) : Py_NewRef(empty_tuple);
    long priority = ev->priority;
    event_cancel_impl(ev);
    PyObject *res = sim_schedule_common(self, t, fn, cbargs, priority,
                                        EV_PLAIN);
    Py_DECREF(fn);
    return res;
}

static PyObject *
sim_schedule_series(PyObject *self_o, PyObject *args, PyObject *kwds)
{
    CoreSim *self = (CoreSim *)self_o;
    PyObject *times_o, *fn, *cbargs;
    long priority;
    if (parse_sched(args, kwds, "schedule_series", &times_o, &fn, &cbargs,
                    &priority) < 0)
        return NULL;
    PyObject *times = PySequence_List(times_o);
    if (times == NULL) {
        Py_DECREF(cbargs);
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(times);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *f = PyNumber_Float(PyList_GET_ITEM(times, i));
        if (f == NULL)
            goto fail;
        PyList_SET_ITEM(times, i, f);
    }
    if (n == 0) {
        PyErr_SetString(PyExc_ValueError,
                        "schedule_series needs at least one time");
        goto fail;
    }
    double prev = self->now;
    for (Py_ssize_t i = 0; i < n; i++) {
        double t = PyFloat_AS_DOUBLE(PyList_GET_ITEM(times, i));
        if (!(prev <= t && t < INFINITY)) {
            PyObject *to = PyFloat_FromDouble(t);
            PyObject *po = PyFloat_FromDouble(prev);
            PyErr_Format(PyExc_ValueError,
                         "series times must be finite, ascending, and not "
                         "in the past (got %S after %S)", to, po);
            Py_XDECREF(to);
            Py_XDECREF(po);
            goto fail;
        }
        prev = t;
    }
    if (!PyCallable_Check(fn)) {
        PyErr_SetString(PyExc_TypeError, "fn must be callable");
        goto fail;
    }
    {
        long long seq = self->next_seq++;
        double t0 = PyFloat_AS_DOUBLE(PyList_GET_ITEM(times, 0));
        PyTypeObject *tp = &SeriesEvent_Type;
        CoreEvent *ev = (CoreEvent *)tp->tp_alloc(tp, 0);
        if (ev == NULL)
            goto fail;
        ev->time = t0;
        ev->priority = priority;
        ev->seq = seq;
        ev->fn = Py_NewRef(fn);
        ev->args = cbargs;          /* stolen */
        ev->sim = Py_NewRef((PyObject *)self);
        ev->times = times;          /* stolen */
        ev->index = 0;
        ev->kind = EV_SERIES;
        ev->stop_flag = 0;
        ev->queued = 1;
        Entry e = {t0, priority, seq, Py_NewRef((PyObject *)ev)};
        if (sim_push_entry(self, e) < 0) {
            Py_DECREF((PyObject *)ev);
            Py_DECREF((PyObject *)ev);
            return NULL;
        }
        self->live++;
        return (PyObject *)ev;
    }
fail:
    Py_DECREF(cbargs);
    Py_DECREF(times);
    return NULL;
}

static PyObject *
sim_run(PyObject *self_o, PyObject *args, PyObject *kwds)
{
    CoreSim *self = (CoreSim *)self_o;
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_o = Py_None, *max_o = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO:run", kwlist,
                                     &until_o, &max_o))
        return NULL;
    if (self->running) {
        PyErr_SetString(PyExc_RuntimeError, "simulator is already running");
        return NULL;
    }
    double limit = INFINITY, until_v = 0.0;
    int has_until = 0;
    if (until_o != Py_None) {
        if (as_double(until_o, &until_v) < 0)
            return NULL;
        limit = until_v;
        has_until = 1;
    }
    long long cap = LLONG_MAX;
    if (max_o != Py_None) {
        double c;
        if (as_double(max_o, &c) < 0)
            return NULL;
        if (c < (double)LLONG_MAX)
            cap = (long long)c;
    }
    self->running = 1;
    self->stopped = 0;
    int rc = (self->backend == BACKEND_HEAP)
                 ? heap_run(self, limit, cap)
                 : cal_run(self, limit, cap);
    self->running = 0;
    if (rc < 0)
        return NULL;
    if (has_until && self->now < until_v && !self->stopped)
        self->now = until_v;
    return PyFloat_FromDouble(self->now);
}

static PyObject *
sim_stop(PyObject *self_o, PyObject *Py_UNUSED(ignored))
{
    ((CoreSim *)self_o)->stopped = 1;
    Py_RETURN_NONE;
}

static PyObject *
sim_pending(PyObject *self_o, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromLongLong(((CoreSim *)self_o)->live);
}

static PyObject *
sim_peek_time(PyObject *self_o, PyObject *Py_UNUSED(ignored))
{
    CoreSim *self = (CoreSim *)self_o;
    double t = (self->backend == BACKEND_HEAP)
                   ? heap_first_time(self)
                   : cal_first_time(self);
    if (t == -2.0 && PyErr_Occurred())
        return NULL;
    return PyFloat_FromDouble(t);
}

static PyObject *
sim_queue_stats(PyObject *self_o, PyObject *Py_UNUSED(ignored))
{
    CoreSim *self = (CoreSim *)self_o;
    PyObject *d = PyDict_New();
    if (d == NULL)
        return NULL;
    int rc = 0;
    PyObject *v;
#define PUT_LL(key, val) \
    do { \
        v = PyLong_FromLongLong(val); \
        if (v == NULL || PyDict_SetItemString(d, key, v) < 0) rc = -1; \
        Py_XDECREF(v); \
    } while (0)
    v = PyUnicode_FromString(
        self->backend == BACKEND_HEAP ? "heap" : "calendar");
    if (v == NULL || PyDict_SetItemString(d, "backend", v) < 0)
        rc = -1;
    Py_XDECREF(v);
    PUT_LL("queued", self->size);
    PUT_LL("live", self->live);
    PUT_LL("peak_occupancy", self->peak);
    PUT_LL("dead", self->dead);
    PUT_LL("pushes", self->pushes);
    PUT_LL("resizes", self->resizes);
    PUT_LL("event_pool_created", self->ev_created);
    PUT_LL("event_pool_reused", self->ev_reused);
#undef PUT_LL
    if (rc < 0) {
        Py_DECREF(d);
        return NULL;
    }
    return d;
}

static PyObject *
sim_get_now(PyObject *self_o, void *Py_UNUSED(closure))
{
    return PyFloat_FromDouble(((CoreSim *)self_o)->now);
}

static PyObject *
sim_get_queue_kind(PyObject *self_o, void *Py_UNUSED(closure))
{
    CoreSim *self = (CoreSim *)self_o;
    return PyUnicode_FromString(
        self->backend == BACKEND_HEAP ? "heap" : "calendar");
}

static PyObject *
sim_repr(PyObject *self_o)
{
    CoreSim *self = (CoreSim *)self_o;
    PyObject *now = PyFloat_FromDouble(self->now);
    PyObject *r = PyUnicode_FromFormat(
        "Simulator(now=%S, pending=%lld, queue=%s)",
        now, self->live,
        self->backend == BACKEND_HEAP ? "heap" : "calendar");
    Py_XDECREF(now);
    return r;
}

/* Drop every reference the queues and the pool hold. */
static void
sim_drop_refs(CoreSim *self)
{
    for (Py_ssize_t i = 0; i < self->heap.len; i++)
        Py_DECREF(self->heap.a[i].ev);
    self->heap.len = 0;
    if (self->buckets != NULL) {
        for (Py_ssize_t b = 0; b < self->nbuckets; b++) {
            EVec *bucket = &self->buckets[b];
            for (Py_ssize_t i = 0; i < bucket->len; i++)
                Py_DECREF(bucket->a[i].ev);
            bucket->len = 0;
        }
    }
    for (Py_ssize_t i = 0; i < self->over.len; i++)
        Py_DECREF(self->over.a[i].ev);
    self->over.len = 0;
    if (self->ev_pool != NULL) {
        for (Py_ssize_t i = 0; i < self->ev_pool_len; i++)
            Py_DECREF(self->ev_pool[i]);
        self->ev_pool_len = 0;
    }
    self->wheel_count = 0;
    self->size = 0;
    self->dead = 0;
    self->live = 0;
}

static void
sim_free_buffers(CoreSim *self)
{
    evec_free(&self->heap);
    if (self->buckets != NULL) {
        for (Py_ssize_t b = 0; b < self->nbuckets; b++)
            evec_free(&self->buckets[b]);
        PyMem_Free(self->buckets);
        self->buckets = NULL;
    }
    self->nbuckets = 0;
    evec_free(&self->over);
    PyMem_Free(self->ev_pool);
    self->ev_pool = NULL;
}

static int
sim_traverse(PyObject *self_o, visitproc visit, void *arg)
{
    CoreSim *self = (CoreSim *)self_o;
    for (Py_ssize_t i = 0; i < self->heap.len; i++)
        Py_VISIT(self->heap.a[i].ev);
    if (self->buckets != NULL) {
        for (Py_ssize_t b = 0; b < self->nbuckets; b++) {
            EVec *bucket = &self->buckets[b];
            for (Py_ssize_t i = 0; i < bucket->len; i++)
                Py_VISIT(bucket->a[i].ev);
        }
    }
    for (Py_ssize_t i = 0; i < self->over.len; i++)
        Py_VISIT(self->over.a[i].ev);
    if (self->ev_pool != NULL) {
        for (Py_ssize_t i = 0; i < self->ev_pool_len; i++)
            Py_VISIT(self->ev_pool[i]);
    }
    return 0;
}

static int
sim_clear(PyObject *self_o)
{
    sim_drop_refs((CoreSim *)self_o);
    return 0;
}

static void
sim_dealloc(PyObject *self_o)
{
    CoreSim *self = (CoreSim *)self_o;
    PyObject_GC_UnTrack(self_o);
    sim_drop_refs(self);
    sim_free_buffers(self);
    Py_TYPE(self_o)->tp_free(self_o);
}

static int
sim_init(PyObject *self_o, PyObject *args, PyObject *kwds)
{
    CoreSim *self = (CoreSim *)self_o;
    static char *kwlist[] = {"queue", NULL};
    PyObject *queue_o = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O:Simulator", kwlist,
                                     &queue_o))
        return -1;
    PyObject *queue = queue_o;
    if (queue == Py_None) {
        PyObject *flags = get_perf_flags();
        if (flags == NULL)
            return -1;
        queue = PyObject_GetAttrString(flags, "queue");
        if (queue == NULL)
            return -1;
    }
    else {
        Py_INCREF(queue);
    }
    int backend;
    if (PyUnicode_Check(queue) &&
        PyUnicode_CompareWithASCIIString(queue, "heap") == 0) {
        backend = BACKEND_HEAP;
    }
    else if (PyUnicode_Check(queue) &&
             PyUnicode_CompareWithASCIIString(queue, "calendar") == 0) {
        backend = BACKEND_CALENDAR;
    }
    else {
        PyErr_Format(PyExc_ValueError,
                     "unknown queue backend %R; expected one of "
                     "['calendar', 'heap']", queue);
        Py_DECREF(queue);
        return -1;
    }
    Py_DECREF(queue);

    /* Re-init safety (Simulator.__init__ called twice). */
    sim_drop_refs(self);
    sim_free_buffers(self);

    self->now = 0.0;
    self->next_seq = 0;
    self->live = 0;
    self->running = 0;
    self->stopped = 0;
    self->backend = backend;
    self->events_executed = 0;
    self->dead = self->size = self->peak = self->pushes = self->resizes = 0;
    evec_init(&self->heap);
    evec_init(&self->over);
    self->ev_pool = NULL;
    self->ev_pool_len = 0;
    self->ev_created = self->ev_reused = 0;
    self->buckets = NULL;
    self->nbuckets = 0;
    if (backend == BACKEND_CALENDAR) {
        self->nbuckets = CAL_INIT_BUCKETS;
        self->width = CAL_INIT_WIDTH;
        self->inv_width = 1.0 / CAL_INIT_WIDTH;
        self->buckets = (EVec *)PyMem_Calloc(CAL_INIT_BUCKETS, sizeof(EVec));
        if (self->buckets == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        self->anchored = 0;
        self->start = self->end = 0.0;
        self->hint = 0;
        self->wheel_count = 0;
        self->grow_at = 2 * CAL_INIT_BUCKETS;
        self->shrink_at = CAL_INIT_BUCKETS / 8;
    }
    return 0;
}

static PyMemberDef sim_members[] = {
    {"events_executed", T_LONGLONG, offsetof(CoreSim, events_executed), 0,
     "Total events executed across all run() calls."},
    {NULL}
};

static PyGetSetDef sim_getset[] = {
    {"now", sim_get_now, NULL, "Current simulation time in seconds.", NULL},
    {"queue_kind", sim_get_queue_kind, NULL,
     "Which queue backend this simulator runs on.", NULL},
    {NULL}
};

static PyMethodDef sim_methods[] = {
    {"schedule", (PyCFunction)sim_schedule, METH_VARARGS | METH_KEYWORDS,
     "Schedule fn(*args) to run `delay` seconds from now."},
    {"schedule_at", (PyCFunction)sim_schedule_at, METH_VARARGS | METH_KEYWORDS,
     "Schedule fn(*args) at absolute simulation time `time`."},
    {"schedule_anon", (PyCFunction)sim_schedule_anon,
     METH_VARARGS | METH_KEYWORDS,
     "schedule_at for fire-and-forget callbacks (recycled handles)."},
    {"schedule_series", (PyCFunction)sim_schedule_series,
     METH_VARARGS | METH_KEYWORDS,
     "Schedule fn(*args) at every time of an ascending schedule."},
    {"postpone", (PyCFunction)sim_postpone, METH_VARARGS,
     "Move a pending event's deadline, cheaply when it moves later."},
    {"run", (PyCFunction)sim_run, METH_VARARGS | METH_KEYWORDS,
     "Execute events until the queue drains, `until` passes, or "
     "`max_events` have run."},
    {"stop", sim_stop, METH_NOARGS,
     "Stop the run loop after the current event returns."},
    {"pending", sim_pending, METH_NOARGS,
     "Number of non-cancelled events currently queued (O(1))."},
    {"peek_time", sim_peek_time, METH_NOARGS,
     "Time of the next pending event, or inf when the queue is empty."},
    {"queue_stats", sim_queue_stats, METH_NOARGS,
     "Occupancy counters of the queue backend (for benchmarks)."},
    {NULL}
};

static PyTypeObject Simulator_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._corec.Simulator",
    .tp_basicsize = sizeof(CoreSim),
    .tp_dealloc = sim_dealloc,
    .tp_repr = sim_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC | Py_TPFLAGS_BASETYPE,
    .tp_doc = "The discrete-event clock and event queue (compiled core).",
    .tp_traverse = sim_traverse,
    .tp_clear = sim_clear,
    .tp_methods = sim_methods,
    .tp_members = sim_members,
    .tp_getset = sim_getset,
    .tp_init = sim_init,
    .tp_new = PyType_GenericNew,
};

/* ---------------------------------------------------------------- module */

static struct PyModuleDef corec_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._corec",
    .m_doc = "Compiled simulation core (bit-exact twin of repro.sim.engine).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__corec(void)
{
    empty_tuple = PyTuple_New(0);
    if (empty_tuple == NULL)
        return NULL;
    if (PyType_Ready(&Event_Type) < 0 ||
        PyType_Ready(&SeriesEvent_Type) < 0 ||
        PyType_Ready(&Simulator_Type) < 0)
        return NULL;
    PyObject *mod = PyModule_Create(&corec_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddObjectRef(mod, "Event", (PyObject *)&Event_Type) < 0 ||
        PyModule_AddObjectRef(mod, "SeriesEvent",
                              (PyObject *)&SeriesEvent_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Simulator",
                              (PyObject *)&Simulator_Type) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
