"""Packets, flow keys, and packet types.

A packet carries the fields MAFIC and the counting substrate actually look
at: the 4-tuple label, a globally unique packet id (the item counted by the
LogLog sketches), a TCP-style timestamp echo (the paper's RTT source), and
bookkeeping flags (``is_attack`` ground truth for metrics — never read by
the defence itself).

Both classes are ``__slots__`` classes on the hot path:

* :class:`FlowKey` computes its stable 64-bit hash **at construction**
  (``flow_hash`` is an attribute load, not a dict probe) and memoizes its
  :meth:`reversed` partner, so the per-ACK reverse key is built once per
  flow instead of once per packet.
* :class:`Packet` objects are recycled through an allocation-free
  free-list pool (:meth:`Packet.acquire` / :meth:`Packet.release`) while
  a run has the pool enabled; every acquire resets every field, including
  a **fresh uid** from the same global counter, so pooled runs are
  bit-identical to allocating ones.

The pool is off by default (unit tests construct and retain raw packets
freely); ``run_experiment`` enables it for the duration of a run.
"""

from __future__ import annotations

import itertools
from enum import Enum

from repro.util.hashing import stable_hash64

_packet_ids = itertools.count(1)


def reset_packet_ids() -> None:
    """Restart the global packet-id counter (test isolation helper)."""
    global _packet_ids
    _packet_ids = itertools.count(1)


class PacketType(Enum):
    """Wire-level packet kinds the simulator distinguishes."""

    DATA = "data"
    ACK = "ack"
    DUP_ACK = "dup_ack"  # MAFIC probe: forged duplicate ACK toward the source
    CONTROL = "control"  # pushback signalling between routers


class FlowKey:
    """The 4-tuple flow label of Section III.B.

    MAFIC keys its tables on a hash of this label rather than the label
    itself, to bound table storage; :meth:`hashed` is that value, computed
    eagerly at construction.  Instances are immutable, hashable (by the
    stable 64-bit value), and ordered like the field tuple.
    """

    __slots__ = ("src_ip", "dst_ip", "src_port", "dst_port", "_hash64",
                 "_reversed", "_label")

    def __init__(self, src_ip: int, dst_ip: int, src_port: int, dst_port: int) -> None:
        if not 0 <= src_port <= 0xFFFF:
            raise ValueError(f"src_port out of range: {src_port}")
        if not 0 <= dst_port <= 0xFFFF:
            raise ValueError(f"dst_port out of range: {dst_port}")
        set_attr = object.__setattr__
        set_attr(self, "src_ip", src_ip)
        set_attr(self, "dst_ip", dst_ip)
        set_attr(self, "src_port", src_port)
        set_attr(self, "dst_port", dst_port)
        set_attr(self, "_hash64", stable_hash64(src_ip, dst_ip, src_port, dst_port))
        set_attr(self, "_reversed", None)
        set_attr(self, "_label", None)  # FlowLabel cache (see core.labels)

    def __setattr__(self, name, value):  # immutability, as the old frozen
        raise AttributeError(f"FlowKey is immutable (tried to set {name!r})")

    def __delattr__(self, name):
        raise AttributeError(f"FlowKey is immutable (tried to delete {name!r})")

    def _tuple(self) -> tuple[int, int, int, int]:
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FlowKey):
            return NotImplemented
        return self._hash64 == other._hash64 and self._tuple() == other._tuple()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash64

    def __lt__(self, other) -> bool:
        if not isinstance(other, FlowKey):
            return NotImplemented
        return self._tuple() < other._tuple()

    def __le__(self, other) -> bool:
        if not isinstance(other, FlowKey):
            return NotImplemented
        return self._tuple() <= other._tuple()

    def __gt__(self, other) -> bool:
        if not isinstance(other, FlowKey):
            return NotImplemented
        return self._tuple() > other._tuple()

    def __ge__(self, other) -> bool:
        if not isinstance(other, FlowKey):
            return NotImplemented
        return self._tuple() >= other._tuple()

    def __reduce__(self):
        return (FlowKey, self._tuple())

    def hashed(self) -> int:
        """Stable 64-bit hash of the label — what the SFT/NFT/PDT store."""
        return self._hash64

    def reversed(self) -> "FlowKey":
        """The key of the opposite direction (ACK stream), memoized both
        ways so per-ACK reverse lookups are attribute loads."""
        rev = self._reversed
        if rev is None:
            rev = FlowKey(self.dst_ip, self.src_ip, self.dst_port, self.src_port)
            object.__setattr__(rev, "_reversed", self)
            object.__setattr__(self, "_reversed", rev)
        return rev

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FlowKey(src_ip={self.src_ip}, dst_ip={self.dst_ip}, "
            f"src_port={self.src_port}, dst_port={self.dst_port})"
        )

    def __str__(self) -> str:
        return (
            f"{self.src_ip & 0xFFFFFFFF:#010x}:{self.src_port}->"
            f"{self.dst_ip & 0xFFFFFFFF:#010x}:{self.dst_port}"
        )


class _PacketPool:
    """Free list of recycled :class:`Packet` objects (off by default)."""

    __slots__ = ("enabled", "free", "allocated", "reused", "released")

    def __init__(self) -> None:
        self.enabled = False
        self.free: list[Packet] = []
        self.allocated = 0  # fresh constructions while enabled
        self.reused = 0
        self.released = 0

    def clear(self) -> None:
        self.free.clear()
        self.allocated = 0
        self.reused = 0
        self.released = 0


_pool = _PacketPool()


def enable_packet_pool(enabled: bool = True) -> None:
    """Turn the free-list pool on or off.

    Only code that never retains a delivered/dropped packet may run with
    the pool enabled; ``run_experiment`` scopes it to a run.  Enabling
    resets the counters; disabling drops the free list but leaves the
    counters readable as a record of the finished run (benchmarks report
    them).
    """
    _pool.enabled = enabled
    if enabled:
        _pool.clear()
    else:
        _pool.free.clear()


def packet_pool_stats() -> dict:
    """Pool counters (for benchmarks and tests)."""
    return {
        "enabled": _pool.enabled,
        "free": len(_pool.free),
        "allocated": _pool.allocated,
        "reused": _pool.reused,
        "released": _pool.released,
    }


class Packet:
    """One simulated packet.

    ``uid`` is unique per packet and is the element inserted into the
    LogLog sketches.  ``seq``/``ack`` are transport sequence numbers in
    *bytes* (TCP-style).  ``ts_val``/``ts_ecr`` model the TCP timestamp
    option MAFIC reads to estimate RTT at the ATR.
    """

    __slots__ = ("flow", "ptype", "size", "seq", "ack", "ts_val", "ts_ecr",
                 "created_at", "uid", "is_attack", "hop_count",
                 "ingress_router", "_uid_hash", "_pooled")

    def __init__(
        self,
        flow: FlowKey,
        ptype: PacketType = PacketType.DATA,
        size: int = 1000,  # bytes, including headers
        seq: int = 0,
        ack: int = 0,
        ts_val: float = 0.0,
        ts_ecr: float = 0.0,
        created_at: float = 0.0,
        uid: int | None = None,
        is_attack: bool = False,  # ground truth for metrics only
        hop_count: int = 0,
        ingress_router: str | None = None,  # set by the ingress; read by monitors
    ) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.flow = flow
        self.ptype = ptype
        self.size = size
        self.seq = seq
        self.ack = ack
        self.ts_val = ts_val
        self.ts_ecr = ts_ecr
        self.created_at = created_at
        self.uid = next(_packet_ids) if uid is None else uid
        self.is_attack = is_attack
        self.hop_count = hop_count
        self.ingress_router = ingress_router
        self._uid_hash = None  # LogLog item-hash memo (salt-0 sketches)
        self._pooled = False

    @classmethod
    def acquire(
        cls,
        flow: FlowKey,
        ptype: PacketType = PacketType.DATA,
        size: int = 1000,
        seq: int = 0,
        ack: int = 0,
        ts_val: float = 0.0,
        ts_ecr: float = 0.0,
        created_at: float = 0.0,
        is_attack: bool = False,
    ) -> "Packet":
        """A packet from the pool (or a fresh one), every field reset.

        The uid comes from the same global counter a plain construction
        draws from, so pooled and unpooled runs assign identical uids.
        """
        if size <= 0:
            # Validate before touching the pool so a rejected acquire is
            # side-effect-free (no packet popped, no counter skew).
            raise ValueError(f"packet size must be positive, got {size}")
        pool = _pool
        if pool.enabled and pool.free:
            self = pool.free.pop()
            pool.reused += 1
            self._pooled = False
            self.flow = flow
            self.ptype = ptype
            self.size = size
            self.seq = seq
            self.ack = ack
            self.ts_val = ts_val
            self.ts_ecr = ts_ecr
            self.created_at = created_at
            self.uid = next(_packet_ids)
            self.is_attack = is_attack
            self.hop_count = 0
            self.ingress_router = None
            self._uid_hash = None
            return self
        if pool.enabled:
            pool.allocated += 1
        return cls(
            flow=flow, ptype=ptype, size=size, seq=seq, ack=ack,
            ts_val=ts_val, ts_ecr=ts_ecr, created_at=created_at,
            is_attack=is_attack,
        )

    def release(self) -> None:
        """Return this packet to the pool (no-op while the pool is off).

        Callers must hold the *last* live reference: the terminal sites
        are link/queue drops and post-dispatch at a receiving host.
        """
        pool = _pool
        if not pool.enabled:
            return
        if self._pooled:
            raise RuntimeError(f"double release of packet uid={self.uid}")
        self._pooled = True
        pool.released += 1
        pool.free.append(self)

    @property
    def src_ip(self) -> int:
        """Claimed (possibly spoofed) source address."""
        return self.flow.src_ip

    @property
    def dst_ip(self) -> int:
        """Destination address."""
        return self.flow.dst_ip

    @property
    def flow_hash(self) -> int:
        """Hashed flow label — the table key."""
        return self.flow._hash64

    @classmethod
    def build_ack(
        cls, flow: FlowKey, data_ts_val: float, ack_seq: int, now: float,
        size: int = 40,
    ) -> "Packet":
        """The ACK a receiver returns for a DATA arrival on ``flow``.

        Takes the data packet's fields as scalars so callers that must
        not retain the (pooled) packet — the delayed-ACK sink — share
        this one recipe with :meth:`make_ack`.
        """
        return cls.acquire(
            flow=flow.reversed(),
            ptype=PacketType.ACK,
            size=size,
            seq=0,
            ack=ack_seq,
            ts_val=now,
            ts_ecr=data_ts_val,
            created_at=now,
        )

    def make_ack(self, ack_seq: int, now: float, size: int = 40) -> "Packet":
        """Build the ACK a receiver returns for this packet."""
        return Packet.build_ack(self.flow, self.ts_val, ack_seq, now, size)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Packet(uid={self.uid}, {self.ptype.value}, flow={self.flow}, "
            f"seq={self.seq}, ack={self.ack}, size={self.size})"
        )
