"""Packets, flow keys, and packet types.

A packet carries the fields MAFIC and the counting substrate actually look
at: the 4-tuple label, a globally unique packet id (the item counted by the
LogLog sketches), a TCP-style timestamp echo (the paper's RTT source), and
bookkeeping flags (``is_attack`` ground truth for metrics — never read by
the defence itself).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.util.hashing import stable_hash64

_packet_ids = itertools.count(1)


def reset_packet_ids() -> None:
    """Restart the global packet-id counter (test isolation helper)."""
    global _packet_ids
    _packet_ids = itertools.count(1)


class PacketType(Enum):
    """Wire-level packet kinds the simulator distinguishes."""

    DATA = "data"
    ACK = "ack"
    DUP_ACK = "dup_ack"  # MAFIC probe: forged duplicate ACK toward the source
    CONTROL = "control"  # pushback signalling between routers


@dataclass(frozen=True, order=True)
class FlowKey:
    """The 4-tuple flow label of Section III.B.

    MAFIC keys its tables on a hash of this label rather than the label
    itself, to bound table storage; :meth:`hashed` is that value.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")

    def hashed(self) -> int:
        """Stable 64-bit hash of the label — what the SFT/NFT/PDT store.

        Cached on first use: transports reuse one key per flow, so every
        packet of a flow shares the memoized value instead of re-running
        the byte-level FNV mix per table lookup.
        """
        value = self.__dict__.get("_hash64")
        if value is None:
            value = stable_hash64(
                self.src_ip, self.dst_ip, self.src_port, self.dst_port
            )
            object.__setattr__(self, "_hash64", value)
        return value

    def reversed(self) -> "FlowKey":
        """The key of the opposite direction (ACK stream)."""
        return FlowKey(self.dst_ip, self.src_ip, self.dst_port, self.src_port)

    def __str__(self) -> str:
        return (
            f"{self.src_ip & 0xFFFFFFFF:#010x}:{self.src_port}->"
            f"{self.dst_ip & 0xFFFFFFFF:#010x}:{self.dst_port}"
        )


@dataclass
class Packet:
    """One simulated packet.

    ``uid`` is unique per packet and is the element inserted into the
    LogLog sketches.  ``seq``/``ack`` are transport sequence numbers in
    *bytes* (TCP-style).  ``ts_val``/``ts_ecr`` model the TCP timestamp
    option MAFIC reads to estimate RTT at the ATR.
    """

    flow: FlowKey
    ptype: PacketType = PacketType.DATA
    size: int = 1000  # bytes, including headers
    seq: int = 0
    ack: int = 0
    ts_val: float = 0.0
    ts_ecr: float = 0.0
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    is_attack: bool = False  # ground truth for metrics only
    hop_count: int = 0
    ingress_router: str | None = None  # set by the ingress; used by monitors

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def src_ip(self) -> int:
        """Claimed (possibly spoofed) source address."""
        return self.flow.src_ip

    @property
    def dst_ip(self) -> int:
        """Destination address."""
        return self.flow.dst_ip

    @property
    def flow_hash(self) -> int:
        """Hashed flow label — the table key."""
        return self.flow.hashed()

    def make_ack(self, ack_seq: int, now: float, size: int = 40) -> "Packet":
        """Build the ACK a receiver returns for this packet."""
        return Packet(
            flow=self.flow.reversed(),
            ptype=PacketType.ACK,
            size=size,
            seq=0,
            ack=ack_seq,
            ts_val=now,
            ts_ecr=self.ts_val,
            created_at=now,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Packet(uid={self.uid}, {self.ptype.value}, flow={self.flow}, "
            f"seq={self.seq}, ack={self.ack}, size={self.size})"
        )
