"""Topology generators: the simulated domain under protection.

The paper's Figure 1 shows a protected domain: several *ingress routers*
at the edge (some of which become ATRs), a routed core, and a *last-hop
router* fronting the victim.  We provide three generators over that
pattern plus a dumbbell for transport unit tests:

* :func:`build_star_domain` — ingresses connect directly to the last hop.
* :func:`build_tree_domain` — a balanced routing tree, victim at the root.
* :func:`build_transit_stub_domain` — a small transit core ring with stub
  ingress routers, the shape used for the domain-size sweeps (Figs 5c/6c).
* :func:`build_multi_tier_domain` — ingresses at two depths behind
  aggregation routers (ATRs near and far from the victim).
* :func:`build_dumbbell` — 2 hosts, 2 routers, 1 bottleneck.

Every generator returns a :class:`Topology` carrying the simulator, the
graph, routers/hosts, the address plan, and the victim designation.

Experiment-facing topologies live in the :data:`TOPOLOGIES` registry:
each entry adapts an :class:`~repro.experiments.config.ExperimentConfig`
to one generator.  New domain shapes register here and become reachable
by name (``ExperimentConfig(topology="my_shape")``) with no edits to the
scenario composer, the config, or the CLI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import networkx as nx

from repro.sim.address import AddressSpace, Subnet
from repro.sim.engine import Simulator
from repro.sim.link import SimplexLink
from repro.sim.node import Host, Router
from repro.sim.queues import DropTailQueue
from repro.sim.routing import build_static_routes
from repro.util.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentConfig

#: Experiment topologies: builders of type ``(ExperimentConfig,
#: **topology_args) -> Topology`` — the config's ``topology_args`` dict
#: arrives as keyword arguments (the built-ins forward them as generator
#: overrides, e.g. ``n_agg`` for ``multi_tier``).  ``meta`` keys in use:
#: ``hops_one_way`` (router hops from a source host to the victim, read
#: by the feasibility validator's RTT estimate).
TOPOLOGIES: "Registry[Callable[[ExperimentConfig], Topology]]" = Registry(
    "topology"
)


@dataclass
class Topology:
    """A built domain: everything an experiment needs to wire flows."""

    sim: Simulator
    graph: nx.Graph
    routers: dict[str, Router]
    hosts: dict[str, Host]
    address_space: AddressSpace
    subnet_of_router: dict[str, Subnet]
    ingress_names: list[str]
    victim_router_name: str
    victim_host_name: str
    links: list[SimplexLink] = field(default_factory=list)

    @property
    def victim_router(self) -> Router:
        """The last-hop router in front of the victim."""
        return self.routers[self.victim_router_name]

    @property
    def victim_host(self) -> Host:
        """The victim end host."""
        return self.hosts[self.victim_host_name]

    @property
    def ingress_routers(self) -> list[Router]:
        """Edge routers where traffic enters the domain."""
        return [self.routers[name] for name in self.ingress_names]

    def victim_access_link(self) -> SimplexLink:
        """The link from the last-hop router down to the victim host."""
        link = self.victim_router.link_to(self.victim_host_name)
        if link is None:
            raise RuntimeError("victim access link missing")
        return link

    def ingress_uplink(self, ingress_name: str) -> SimplexLink:
        """The ingress router's link toward the core (where hooks attach).

        For a star domain this is the direct link to the last-hop router;
        in general it is the first hop of the ingress's route to the
        victim subnet.
        """
        router = self.routers[ingress_name]
        table = router.routing_table
        if table is None:
            raise RuntimeError(f"{ingress_name} has no routing table")
        victim_subnet = self.subnet_of_router[self.victim_router_name]
        hop = table.next_hop(victim_subnet.base)
        if hop is None:
            raise RuntimeError(f"{ingress_name} has no route to the victim")
        link = router.link_to(hop)
        if link is None:
            raise RuntimeError(f"{ingress_name} missing link to {hop}")
        return link


def _link_pair(
    sim: Simulator,
    a,
    b,
    bandwidth_bps: float,
    delay: float,
    queue_capacity: int,
    links: list[SimplexLink],
) -> None:
    """Create a duplex connection as two simplex links."""
    fwd = SimplexLink(sim, a, b, bandwidth_bps, delay, DropTailQueue(queue_capacity))
    rev = SimplexLink(sim, b, a, bandwidth_bps, delay, DropTailQueue(queue_capacity))
    a.attach_link(fwd)
    b.attach_link(rev)
    links.extend((fwd, rev))


def _attach_edge_host(
    sim: Simulator,
    router: Router,
    space: AddressSpace,
    host_name: str,
    bandwidth_bps: float,
    delay: float,
    queue_capacity: int,
    links: list[SimplexLink],
    subnet: Subnet | None = None,
    host_index: int = 1,
) -> tuple[Host, Subnet]:
    """Allocate a subnet at ``router`` and hang one host off it."""
    if subnet is None:
        subnet = space.allocate_subnet(24)
    host = Host(sim, host_name, subnet.host(host_index).value)
    host.gateway = router
    _link_pair(sim, host, router, bandwidth_bps, delay, queue_capacity, links)
    router.add_local_delivery(subnet.contains, _HostDelivery(host, router))
    return host, subnet


class _HostDelivery:
    """Router-side local delivery: push the packet down the access link."""

    def __init__(self, host: Host, router: Router) -> None:
        self._host = host
        self._router = router

    def handle_packet(self, packet, now) -> None:
        link = self._router.link_to(self._host.name)
        if link is not None:
            link.send(packet)


def build_star_domain(
    n_ingress: int = 8,
    core_bandwidth_bps: float = 100e6,
    access_bandwidth_bps: float = 100e6,
    victim_bandwidth_bps: float = 10e6,
    link_delay: float = 0.005,
    queue_capacity: int = 256,
    sim: Simulator | None = None,
) -> Topology:
    """Ingress routers star-connected to the victim's last-hop router.

    Each ingress router fronts one /24 of source hosts; the victim router
    fronts the victim's /24.  The victim access link is the bottleneck.
    """
    if n_ingress < 1:
        raise ValueError("need at least one ingress router")
    sim = sim if sim is not None else Simulator()
    space = AddressSpace()
    graph = nx.Graph()
    links: list[SimplexLink] = []
    routers: dict[str, Router] = {}
    hosts: dict[str, Host] = {}
    subnet_of_router: dict[str, Subnet] = {}

    victim_router = Router(sim, "lasthop")
    routers["lasthop"] = victim_router
    graph.add_node("lasthop")

    ingress_names: list[str] = []
    for i in range(n_ingress):
        name = f"ingress{i}"
        router = Router(sim, name)
        routers[name] = router
        graph.add_node(name)
        graph.add_edge(name, "lasthop", delay=link_delay)
        _link_pair(sim, router, victim_router, core_bandwidth_bps, link_delay,
                   queue_capacity, links)
        ingress_names.append(name)
        subnet = space.allocate_subnet(24)
        subnet_of_router[name] = subnet

    victim_subnet = space.allocate_subnet(24)
    subnet_of_router["lasthop"] = victim_subnet
    victim_host, _ = _attach_edge_host(
        sim, victim_router, space, "victim", victim_bandwidth_bps, 0.001,
        queue_capacity, links, subnet=victim_subnet,
    )
    hosts["victim"] = victim_host

    # One source host per ingress subnet; traffic generators send from it
    # (with spoofed source IPs drawn from the whole subnet when attacking).
    for i, name in enumerate(ingress_names):
        host, _ = _attach_edge_host(
            sim, routers[name], space, f"src{i}", access_bandwidth_bps, 0.001,
            queue_capacity, links, subnet=subnet_of_router[name],
        )
        hosts[f"src{i}"] = host

    build_static_routes(graph, routers, subnet_of_router.items())
    return Topology(
        sim=sim, graph=graph, routers=routers, hosts=hosts, address_space=space,
        subnet_of_router=subnet_of_router, ingress_names=ingress_names,
        victim_router_name="lasthop", victim_host_name="victim", links=links,
    )


def build_tree_domain(
    depth: int = 2,
    fanout: int = 3,
    core_bandwidth_bps: float = 100e6,
    access_bandwidth_bps: float = 100e6,
    victim_bandwidth_bps: float = 10e6,
    link_delay: float = 0.005,
    queue_capacity: int = 256,
    sim: Simulator | None = None,
) -> Topology:
    """A balanced router tree; leaves are ingresses, the root is last-hop."""
    if depth < 1 or fanout < 1:
        raise ValueError("depth and fanout must be >= 1")
    sim = sim if sim is not None else Simulator()
    space = AddressSpace()
    graph = nx.Graph()
    links: list[SimplexLink] = []
    routers: dict[str, Router] = {}
    hosts: dict[str, Host] = {}
    subnet_of_router: dict[str, Subnet] = {}

    root = Router(sim, "lasthop")
    routers["lasthop"] = root
    graph.add_node("lasthop")

    level = ["lasthop"]
    counter = 0
    leaves: list[str] = []
    for d in range(depth):
        next_level: list[str] = []
        for parent in level:
            for _ in range(fanout):
                name = f"r{counter}"
                counter += 1
                router = Router(sim, name)
                routers[name] = router
                graph.add_node(name)
                graph.add_edge(parent, name, delay=link_delay)
                _link_pair(sim, routers[parent], router, core_bandwidth_bps,
                           link_delay, queue_capacity, links)
                next_level.append(name)
        level = next_level
    leaves = level

    victim_subnet = space.allocate_subnet(24)
    subnet_of_router["lasthop"] = victim_subnet
    victim_host, _ = _attach_edge_host(
        sim, root, space, "victim", victim_bandwidth_bps, 0.001,
        queue_capacity, links, subnet=victim_subnet,
    )
    hosts["victim"] = victim_host

    for i, name in enumerate(leaves):
        subnet = space.allocate_subnet(24)
        subnet_of_router[name] = subnet
        host, _ = _attach_edge_host(
            sim, routers[name], space, f"src{i}", access_bandwidth_bps, 0.001,
            queue_capacity, links, subnet=subnet,
        )
        hosts[f"src{i}"] = host

    build_static_routes(graph, routers, subnet_of_router.items())
    return Topology(
        sim=sim, graph=graph, routers=routers, hosts=hosts, address_space=space,
        subnet_of_router=subnet_of_router, ingress_names=list(leaves),
        victim_router_name="lasthop", victim_host_name="victim", links=links,
    )


def build_transit_stub_domain(
    n_routers: int = 40,
    transit_fraction: float = 0.2,
    core_bandwidth_bps: float = 155e6,
    access_bandwidth_bps: float = 100e6,
    victim_bandwidth_bps: float = 10e6,
    link_delay: float = 0.005,
    queue_capacity: int = 256,
    sim: Simulator | None = None,
) -> Topology:
    """Transit-stub domain: a transit ring core, stub ingresses hanging off.

    ``n_routers`` is the paper's domain-size parameter N (Table II default
    40).  Roughly ``transit_fraction`` of routers form the core ring; the
    rest are stub ingress routers round-robined across core routers.  The
    victim's last-hop router is one of the core routers.
    """
    if n_routers < 3:
        raise ValueError("need at least 3 routers")
    if not 0.0 < transit_fraction < 1.0:
        raise ValueError("transit_fraction must be in (0, 1)")
    sim = sim if sim is not None else Simulator()
    space = AddressSpace()
    graph = nx.Graph()
    links: list[SimplexLink] = []
    routers: dict[str, Router] = {}
    hosts: dict[str, Host] = {}
    subnet_of_router: dict[str, Subnet] = {}

    n_core = max(2, int(round(n_routers * transit_fraction)))
    n_stub = n_routers - n_core - 1  # one core slot is the last-hop router
    if n_stub < 1:
        n_core = max(2, n_routers - 2)
        n_stub = n_routers - n_core - 1
        if n_stub < 1:
            raise ValueError(f"n_routers={n_routers} too small for transit-stub")

    core_names = [f"core{i}" for i in range(n_core)]
    for name in core_names:
        routers[name] = Router(sim, name)
        graph.add_node(name)
    # Ring plus a chord for redundancy.
    for i, name in enumerate(core_names):
        nxt = core_names[(i + 1) % n_core]
        if not graph.has_edge(name, nxt):
            graph.add_edge(name, nxt, delay=link_delay)
            _link_pair(sim, routers[name], routers[nxt], core_bandwidth_bps,
                       link_delay, queue_capacity, links)
    if n_core >= 4:
        a, b = core_names[0], core_names[n_core // 2]
        if not graph.has_edge(a, b):
            graph.add_edge(a, b, delay=link_delay)
            _link_pair(sim, routers[a], routers[b], core_bandwidth_bps,
                       link_delay, queue_capacity, links)

    # Last-hop router hangs off core0.
    victim_router = Router(sim, "lasthop")
    routers["lasthop"] = victim_router
    graph.add_node("lasthop")
    graph.add_edge("lasthop", core_names[0], delay=link_delay)
    _link_pair(sim, victim_router, routers[core_names[0]], core_bandwidth_bps,
               link_delay, queue_capacity, links)

    victim_subnet = space.allocate_subnet(24)
    subnet_of_router["lasthop"] = victim_subnet
    victim_host, _ = _attach_edge_host(
        sim, victim_router, space, "victim", victim_bandwidth_bps, 0.001,
        queue_capacity, links, subnet=victim_subnet,
    )
    hosts["victim"] = victim_host

    ingress_names: list[str] = []
    for i in range(n_stub):
        name = f"ingress{i}"
        router = Router(sim, name)
        routers[name] = router
        graph.add_node(name)
        anchor = core_names[i % n_core]
        graph.add_edge(name, anchor, delay=link_delay)
        _link_pair(sim, router, routers[anchor], access_bandwidth_bps,
                   link_delay, queue_capacity, links)
        ingress_names.append(name)
        subnet = space.allocate_subnet(24)
        subnet_of_router[name] = subnet
        host, _ = _attach_edge_host(
            sim, router, space, f"src{i}", access_bandwidth_bps, 0.001,
            queue_capacity, links, subnet=subnet,
        )
        hosts[f"src{i}"] = host

    build_static_routes(graph, routers, subnet_of_router.items())
    return Topology(
        sim=sim, graph=graph, routers=routers, hosts=hosts, address_space=space,
        subnet_of_router=subnet_of_router, ingress_names=ingress_names,
        victim_router_name="lasthop", victim_host_name="victim", links=links,
    )


def build_multi_tier_domain(
    n_agg: int = 2,
    mids_per_agg: int = 2,
    relays_per_agg: int = 1,
    leaves_per_relay: int = 3,
    core_bandwidth_bps: float = 100e6,
    access_bandwidth_bps: float = 100e6,
    victim_bandwidth_bps: float = 10e6,
    link_delay: float = 0.005,
    queue_capacity: int = 256,
    sim: Simulator | None = None,
) -> Topology:
    """A multi-tier domain with ingress routers at two depths.

    Aggregation routers fan in to the victim's last-hop router.  Each
    aggregation router fronts *mid* ingress routers (depth 2, close to
    the victim) and relay routers whose children are *leaf* ingress
    routers (depth 3, far from the victim).  Both ingress tiers carry
    source subnets, so ATRs arise at two distances from the victim and
    pushback requests traverse different control-path lengths — the
    regime the star domain cannot express.  Relays carry no subnet; a
    leaf's traffic is examined only at its own uplink, never twice.
    """
    if min(n_agg, mids_per_agg, relays_per_agg, leaves_per_relay) < 1:
        raise ValueError("all tier sizes must be >= 1")
    sim = sim if sim is not None else Simulator()
    space = AddressSpace()
    graph = nx.Graph()
    links: list[SimplexLink] = []
    routers: dict[str, Router] = {}
    hosts: dict[str, Host] = {}
    subnet_of_router: dict[str, Subnet] = {}

    root = Router(sim, "lasthop")
    routers["lasthop"] = root
    graph.add_node("lasthop")

    def connect(parent: str, name: str, bandwidth: float) -> Router:
        router = Router(sim, name)
        routers[name] = router
        graph.add_node(name)
        graph.add_edge(parent, name, delay=link_delay)
        _link_pair(sim, routers[parent], router, bandwidth, link_delay,
                   queue_capacity, links)
        return router

    ingress_names: list[str] = []
    for a in range(n_agg):
        agg_name = f"agg{a}"
        connect("lasthop", agg_name, core_bandwidth_bps)
        for m in range(mids_per_agg):
            ingress_names.append(
                connect(agg_name, f"mid{a}_{m}", access_bandwidth_bps).name
            )
        for r in range(relays_per_agg):
            relay_name = f"relay{a}_{r}"
            connect(agg_name, relay_name, core_bandwidth_bps)
            for leaf in range(leaves_per_relay):
                ingress_names.append(
                    connect(relay_name, f"leaf{a}_{r}_{leaf}",
                            access_bandwidth_bps).name
                )

    victim_subnet = space.allocate_subnet(24)
    subnet_of_router["lasthop"] = victim_subnet
    victim_host, _ = _attach_edge_host(
        sim, root, space, "victim", victim_bandwidth_bps, 0.001,
        queue_capacity, links, subnet=victim_subnet,
    )
    hosts["victim"] = victim_host

    for i, name in enumerate(ingress_names):
        subnet = space.allocate_subnet(24)
        subnet_of_router[name] = subnet
        host, _ = _attach_edge_host(
            sim, routers[name], space, f"src{i}", access_bandwidth_bps, 0.001,
            queue_capacity, links, subnet=subnet,
        )
        hosts[f"src{i}"] = host

    build_static_routes(graph, routers, subnet_of_router.items())
    return Topology(
        sim=sim, graph=graph, routers=routers, hosts=hosts, address_space=space,
        subnet_of_router=subnet_of_router, ingress_names=ingress_names,
        victim_router_name="lasthop", victim_host_name="victim", links=links,
    )


def build_dumbbell(
    bottleneck_bps: float = 1.5e6,
    access_bps: float = 10e6,
    delay: float = 0.010,
    queue_capacity: int = 32,
    sim: Simulator | None = None,
) -> Topology:
    """Two hosts, two routers, one bottleneck — the transport test rig."""
    sim = sim if sim is not None else Simulator()
    space = AddressSpace()
    graph = nx.Graph()
    links: list[SimplexLink] = []
    routers: dict[str, Router] = {}
    hosts: dict[str, Host] = {}
    subnet_of_router: dict[str, Subnet] = {}

    left = Router(sim, "left")
    right = Router(sim, "lasthop")
    routers["left"], routers["lasthop"] = left, right
    graph.add_node("left")
    graph.add_node("lasthop")
    graph.add_edge("left", "lasthop", delay=delay)
    _link_pair(sim, left, right, bottleneck_bps, delay, queue_capacity, links)

    left_subnet = space.allocate_subnet(24)
    subnet_of_router["left"] = left_subnet
    src, _ = _attach_edge_host(sim, left, space, "src0", access_bps, 0.001,
                               queue_capacity, links, subnet=left_subnet)
    hosts["src0"] = src

    right_subnet = space.allocate_subnet(24)
    subnet_of_router["lasthop"] = right_subnet
    dst, _ = _attach_edge_host(sim, right, space, "victim", access_bps, 0.001,
                               queue_capacity, links, subnet=right_subnet)
    hosts["victim"] = dst

    build_static_routes(graph, routers, subnet_of_router.items())
    return Topology(
        sim=sim, graph=graph, routers=routers, hosts=hosts, address_space=space,
        subnet_of_router=subnet_of_router, ingress_names=["left"],
        victim_router_name="lasthop", victim_host_name="victim", links=links,
    )


# --------------------------------------------------------------------------
# Registry adapters: ExperimentConfig -> generator arguments.  The paper's
# knobs (bandwidths, delay, queue size, N) map onto each generator here;
# everything else about a shape stays local to its builder.


def _common_link_kwargs(config: "ExperimentConfig") -> dict:
    return dict(
        core_bandwidth_bps=config.core_bandwidth_bps,
        access_bandwidth_bps=config.access_bandwidth_bps,
        victim_bandwidth_bps=config.victim_bandwidth_bps,
        link_delay=config.link_delay,
        queue_capacity=config.queue_capacity,
    )


@TOPOLOGIES.register("star", hops_one_way=2)
def _star_from_config(config: "ExperimentConfig", **overrides) -> Topology:
    """Ingresses star-connected straight to the victim's last-hop router."""
    params = dict(
        n_ingress=max(1, config.n_routers - 1), **_common_link_kwargs(config)
    )
    params.update(overrides)
    return build_star_domain(**params)


@TOPOLOGIES.register("tree", hops_one_way=3)
def _tree_from_config(config: "ExperimentConfig", **overrides) -> Topology:
    """Balanced router tree; leaves are ingresses, the victim at the root."""
    # Pick fanout 3 and the depth that reaches roughly n_routers.
    fanout = 3
    depth = max(1, round(math.log(max(3, config.n_routers), fanout)) - 0)
    params = dict(
        depth=min(3, depth), fanout=fanout, **_common_link_kwargs(config)
    )
    params.update(overrides)
    return build_tree_domain(**params)


@TOPOLOGIES.register("transit_stub", aliases=("transit-stub",), hops_one_way=4)
def _transit_stub_from_config(config: "ExperimentConfig", **overrides) -> Topology:
    """Transit ring core with stub ingresses; honours n_routers exactly."""
    params = dict(n_routers=config.n_routers, **_common_link_kwargs(config))
    params.update(overrides)
    return build_transit_stub_domain(**params)


@TOPOLOGIES.register("multi_tier", aliases=("multi-tier",), hops_one_way=4)
def _multi_tier_from_config(config: "ExperimentConfig", **overrides) -> Topology:
    """Two ingress tiers behind aggregation routers (ATRs at two depths)."""
    # Split n_routers across aggregation subtrees, each one relay plus
    # mid/leaf ingresses in a ~1:2 ratio.  Router count comes out at
    # n_routers up to integer-division remainders; the smallest
    # expressible two-tier domain (agg + relay + one ingress per tier)
    # has 5 routers, the floor for n_routers <= 5.
    n_agg = 1 if config.n_routers < 12 else 2 if config.n_routers < 24 else 3
    per_agg = max(3, (config.n_routers - 1 - n_agg) // n_agg)
    budget = per_agg - 1  # one relay per subtree
    mids = max(1, budget // 3)
    leaves = max(1, budget - mids)
    params = dict(
        n_agg=n_agg,
        mids_per_agg=mids,
        relays_per_agg=1,
        leaves_per_relay=leaves,
        **_common_link_kwargs(config),
    )
    params.update(overrides)
    return build_multi_tier_domain(**params)
