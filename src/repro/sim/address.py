"""IPv4-style addressing, subnets, and legality checks.

MAFIC's first line of defence (Section III.A) drops packets whose source
address is *illegal or unreachable*: not a valid unicast address of any
subnet in any AS the domain routes to.  To exercise that path we model a
32-bit address space partitioned into allocated subnets (one per stub /
host cluster), plus reserved ranges that are never legal sources.
"""

from __future__ import annotations

from dataclasses import dataclass

_MAX_ADDR = 0xFFFFFFFF


def _check_addr(value: int) -> int:
    if not 0 <= value <= _MAX_ADDR:
        raise ValueError(f"address out of IPv4 range: {value!r}")
    return int(value)


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A 32-bit address with dotted-quad rendering.

    >>> str(IPv4Address.from_string("10.0.0.1"))
    '10.0.0.1'
    """

    value: int

    def __post_init__(self) -> None:
        _check_addr(self.value)

    @classmethod
    def from_string(cls, text: str) -> "IPv4Address":
        """Parse a dotted quad."""
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"not a dotted quad: {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True)
class Subnet:
    """A CIDR block ``base/prefix_len``."""

    base: int
    prefix_len: int

    def __post_init__(self) -> None:
        _check_addr(self.base)
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        if self.prefix_len == 0:
            mask = 0
        else:
            mask = (_MAX_ADDR << (32 - self.prefix_len)) & _MAX_ADDR
        # Frozen dataclass: stash the precomputed mask directly.  contains()
        # runs per packet per hop, so the mask must be a load, not a shift.
        object.__setattr__(self, "_mask", mask)
        if self.base & ~mask:
            raise ValueError("subnet base has host bits set")

    @property
    def netmask(self) -> int:
        """The prefix as a 32-bit mask (precomputed)."""
        return self._mask

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix_len)

    def contains(self, addr: int | IPv4Address) -> bool:
        """True when ``addr`` falls inside this block."""
        value = int(addr)
        return (value & self._mask) == self.base

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th address in the block (0-based)."""
        if not 0 <= index < self.size:
            raise ValueError(f"host index {index} out of subnet of size {self.size}")
        return IPv4Address(self.base + index)

    def __str__(self) -> str:
        return f"{IPv4Address(self.base)}/{self.prefix_len}"


class AddressSpace:
    """The set of subnets allocated in (and routable from) the domain.

    A source address is **legal** iff it belongs to some allocated subnet
    and is not in a reserved range.  Addresses outside all allocated
    subnets model the "illegal or unreachable" sources MAFIC sends
    straight to the PDT.
    """

    #: Legality-memo bound: rotating spoofers mint fresh addresses per
    #: packet, so the cache is cleared (not grown) past this many entries.
    _LEGAL_CACHE_MAX = 1 << 16

    #: Reserved blocks that can never be legitimate unicast sources.
    RESERVED = (
        Subnet(IPv4Address.from_string("0.0.0.0").value, 8),
        Subnet(IPv4Address.from_string("127.0.0.0").value, 8),
        Subnet(IPv4Address.from_string("224.0.0.0").value, 4),  # multicast
        Subnet(IPv4Address.from_string("240.0.0.0").value, 4),  # class E
    )

    def __init__(self) -> None:
        from repro.perf import FLAGS

        self._subnets: list[Subnet] = []
        self._next_alloc = IPv4Address.from_string("10.0.0.0").value
        # Legality is static once the topology is built; memoize per
        # address (the PDT shortcut consults this for every examined
        # packet).  Cleared on allocation; None in legacy benchmark mode.
        self._legal_cache: dict[int, bool] | None = (
            {} if FLAGS.hot_path_caches else None
        )

    @property
    def subnets(self) -> tuple[Subnet, ...]:
        """All allocated subnets, in allocation order."""
        return tuple(self._subnets)

    def allocate_subnet(self, prefix_len: int = 24) -> Subnet:
        """Allocate the next free block of the given prefix length."""
        if not 8 <= prefix_len <= 30:
            raise ValueError("prefix_len must be in [8, 30]")
        size = 1 << (32 - prefix_len)
        base = (self._next_alloc + size - 1) // size * size  # align
        subnet = Subnet(base, prefix_len)
        self._next_alloc = base + size
        if self._next_alloc > IPv4Address.from_string("126.255.255.255").value:
            raise RuntimeError("address space exhausted")
        self._subnets.append(subnet)
        if self._legal_cache is not None:
            self._legal_cache.clear()
        return subnet

    def is_reserved(self, addr: int | IPv4Address) -> bool:
        """True when ``addr`` is in a reserved (never-legal) range."""
        return any(block.contains(addr) for block in self.RESERVED)

    def is_legal_source(self, addr: int | IPv4Address) -> bool:
        """True when ``addr`` could be a real host of some allocated subnet.

        "Legal" in the paper's sense: a valid address of a certain subnet
        within a certain AS — NOT necessarily the true sender.
        """
        value = int(addr)
        cache = self._legal_cache
        legal = cache.get(value) if cache is not None else None
        if legal is None:
            legal = not self.is_reserved(value) and any(
                subnet.contains(value) for subnet in self._subnets
            )
            if cache is not None:
                if len(cache) >= self._LEGAL_CACHE_MAX:
                    # Rotating spoofers feed one fresh random address per
                    # packet; an unbounded memo would grow O(packets).
                    # Dropping the whole cache keeps the stable-flow hit
                    # rate (they repopulate immediately) with bounded memory.
                    cache.clear()
                cache[value] = legal
        return legal

    def random_legal_address(self, rng) -> IPv4Address:
        """Draw a uniformly random address from the allocated subnets."""
        if not self._subnets:
            raise RuntimeError("no subnets allocated")
        subnet = self._subnets[int(rng.integers(len(self._subnets)))]
        return subnet.host(int(rng.integers(subnet.size)))

    def random_illegal_address(self, rng, max_tries: int = 64) -> IPv4Address:
        """Draw an address that fails :meth:`is_legal_source`.

        Samples from the unallocated space above the allocation cursor and
        from reserved ranges; with a fresh space this always succeeds fast.
        """
        lo = IPv4Address.from_string("192.0.0.0").value
        hi = IPv4Address.from_string("223.255.255.255").value
        for _ in range(max_tries):
            candidate = int(rng.integers(lo, hi + 1))
            if not self.is_legal_source(candidate):
                return IPv4Address(candidate)
        # Reserved ranges are guaranteed illegal.
        return IPv4Address(
            self.RESERVED[1].base + int(rng.integers(self.RESERVED[1].size))
        )
