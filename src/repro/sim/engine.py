"""Event-heap discrete-event scheduler.

A classic callback-style engine: events are ``(time, priority, seq)``-ordered
entries in a binary heap; running an event calls its function.  There are no
coroutines — handlers schedule follow-up events explicitly — which keeps the
hot path small and the execution order fully deterministic.

The heap holds plain ``(time, priority, seq, handle)`` tuples so every
sift compares machine floats/ints at C speed instead of calling into a
dataclass ``__lt__``.  The :class:`Event` handle is a slotted object that
carries the callback; cancelling a handle nulls its callback in place
(O(1)) and the dead tuple is discarded lazily when it surfaces, or in a
batch compaction when cancelled entries outnumber live ones.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable

#: Never compact below this many dead entries — rebuilding a tiny heap
#: costs more in constant factors than the dead tuples do in sift depth.
_COMPACT_MIN_DEAD = 64


class Event:
    """Handle to one scheduled callback.

    Ordering lives in the heap tuple ``(time, priority, seq)``, not here;
    ``seq`` is a monotonically increasing tie-breaker so same-time events
    fire in scheduling order.  The handle only carries the callback and
    supports O(1) :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple[Any, ...],
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn: Callable[..., None] | None = fn
        self.args = args
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event ran)."""
        return self.fn is None

    def cancel(self) -> None:
        """Mark the event as cancelled; it is skipped when popped."""
        if self.fn is None:
            return
        self.fn = None
        self.args = ()
        sim = self._sim
        if sim is not None:
            sim._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.fn is None else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {state})"


class Simulator:
    """The discrete-event clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, my_handler, arg1, arg2)
        sim.run(until=10.0)

    Handlers receive their args verbatim; they query ``sim.now`` for the
    current time and call :meth:`schedule` / :meth:`schedule_at` to continue
    the computation.
    """

    def __init__(self) -> None:
        self._now = 0.0
        # Heap of (time, priority, seq, Event); seq is unique, so the
        # comparison never reaches the handle.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._next_seq = itertools.count().__next__
        self._live = 0  # non-cancelled entries still in the heap
        self._dead = 0  # cancelled entries not yet discarded
        self._running = False
        self._stopped = False
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        time = float(time)
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        if not callable(fn):
            raise TypeError("fn must be callable")
        ev = Event(time, priority, self._next_seq(), fn, args, self)
        heapq.heappush(self._heap, (time, priority, ev.seq, ev))
        self._live += 1
        return ev

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def peek_time(self) -> float:
        """Time of the next pending event, or ``inf`` when the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].fn is None:
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else math.inf

    def pending(self) -> int:
        """Number of non-cancelled events currently queued (O(1))."""
        return self._live

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events until the queue drains, ``until`` passes, or
        ``max_events`` have run.  Returns the simulation time reached.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so periodic measurements line up.
        """
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        self._stopped = False
        executed_this_run = 0
        heap = self._heap  # compaction mutates in place, identity is stable
        heappop = heapq.heappop
        try:
            while heap and not self._stopped:
                entry = heap[0]
                ev = entry[3]
                fn = ev.fn
                if fn is None:
                    heappop(heap)
                    self._dead -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                self._live -= 1
                ev.fn = None  # consumed; a late cancel() must be a no-op
                self._now = time
                fn(*ev.args)
                self.events_executed += 1
                executed_this_run += 1
                if max_events is not None and executed_this_run >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = float(until)
        return self._now

    # ------------------------------------------------------------ internals

    def _on_cancel(self) -> None:
        """Bookkeeping for a handle cancelled while still in the heap."""
        self._live -= 1
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled tuple and re-heapify (amortized O(n))."""
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[3].fn is not None]
        heapq.heapify(heap)
        self._dead = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Simulator(now={self._now:.6f}, pending={self._live})"
