"""Event-heap discrete-event scheduler.

A classic callback-style engine: events are ``(time, priority, seq)``-ordered
entries in a binary heap; running an event calls its function.  There are no
coroutines — handlers schedule follow-up events explicitly — which keeps the
hot path small and the execution order fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Ordering is by ``(time, priority, seq)``; ``seq`` is a monotonically
    increasing tie-breaker so same-time events fire in scheduling order.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it is skipped when popped."""
        self.cancelled = True


class Simulator:
    """The discrete-event clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, my_handler, arg1, arg2)
        sim.run(until=10.0)

    Handlers receive their args verbatim; they query ``sim.now`` for the
    current time and call :meth:`schedule` / :meth:`schedule_at` to continue
    the computation.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        if not callable(fn):
            raise TypeError("fn must be callable")
        ev = Event(time=float(time), priority=priority, seq=next(self._seq), fn=fn, args=args)
        heapq.heappush(self._heap, ev)
        return ev

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def peek_time(self) -> float:
        """Time of the next pending event, or ``inf`` when the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else math.inf

    def pending(self) -> int:
        """Number of non-cancelled events currently queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events until the queue drains, ``until`` passes, or
        ``max_events`` have run.  Returns the simulation time reached.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so periodic measurements line up.
        """
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        self._stopped = False
        executed_this_run = 0
        try:
            while self._heap and not self._stopped:
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = ev.time
                ev.fn(*ev.args)
                self.events_executed += 1
                executed_this_run += 1
                if max_events is not None and executed_this_run >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = float(until)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Simulator(now={self._now:.6f}, pending={len(self._heap)})"
