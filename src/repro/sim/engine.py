"""Discrete-event scheduler with selectable queue backends.

A classic callback-style engine: events are ``(time, priority, seq)``-ordered
entries; running an event calls its function.  There are no coroutines —
handlers schedule follow-up events explicitly — which keeps the hot path
small and the execution order fully deterministic.

Two queue backends implement the identical total order (``seq`` is unique,
so the order is strict and both backends execute the exact same sequence):

* ``"heap"`` — a binary heap of plain ``(time, priority, seq, handle)``
  tuples (C-speed sifts), as shipped in PR 1.
* ``"calendar"`` — an array-backed calendar queue (Brown 1988): a bucketed
  timing wheel whose bucket width re-tunes itself to the observed event
  spacing, with a far-future overflow heap for events beyond the current
  wheel window.  Inserts and pops touch one small bucket instead of
  sifting a ``log n`` path, so cost stays flat as the pending set grows.

Both support *series events* (:meth:`Simulator.schedule_series`): one
handle that fires at each time of a precomputed, ascending schedule.  The
engine re-inserts the handle after each firing (fresh ``seq``, assigned
after the callback returns — exactly where a self-rescheduling handler
would have allocated it), so a periodic source costs one event object per
horizon chunk instead of one per tick.

Cancelling a handle nulls its callback in place (O(1)); dead entries are
discarded lazily when they surface, or in a batch compaction when
cancelled entries outnumber live ones.

Two further churn-reduction paths ride on the same lazy machinery:

* :meth:`Simulator.postpone` moves a pending event's deadline *later*
  without touching the queue: the handle's ``(time, seq)`` are updated in
  place and the queued tuple goes stale (its ``seq`` no longer matches
  the handle's).  A stale tuple that surfaces is silently re-inserted at
  the handle's true position instead of executing.  Exactly one ``seq``
  is drawn per call — the same draw a cancel+reschedule would make — so
  the global tie-break order is bit-identical to the eager formulation.
* :meth:`Simulator.schedule_anon` is ``schedule_at`` for fire-and-forget
  callbacks whose handle the caller discards (link drains/deliveries):
  the handle comes from a per-simulator free list and is recycled the
  moment it fires, so the busiest allocation site stops allocating.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable

from repro.perf import FLAGS

#: Never compact below this many dead entries — rebuilding a tiny queue
#: costs more in constant factors than the dead tuples do in scan depth.
_COMPACT_MIN_DEAD = 64


class Event:
    """Handle to one scheduled callback.

    Ordering lives in the queue tuple ``(time, priority, seq)``, not here;
    ``seq`` is a monotonically increasing tie-breaker so same-time events
    fire in scheduling order.  The handle only carries the callback and
    supports O(1) :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "_sim")

    #: Class-level default: plain events carry no series schedule.  The
    #: run loop branches on this without paying a per-instance slot.
    times = None

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple[Any, ...],
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn: Callable[..., None] | None = fn
        self.args = args
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event ran)."""
        return self.fn is None

    def cancel(self) -> None:
        """Mark the event as cancelled; it is skipped when popped."""
        if self.fn is None:
            return
        self.fn = None
        self.args = ()
        sim = self._sim
        if sim is not None:
            sim._on_cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.fn is None else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {state})"


#: ``times`` sentinel marking a pooled fire-and-forget event (see
#: :meth:`Simulator.schedule_anon`).  Any non-None, non-list value the run
#: loops can test with ``is`` works; the empty tuple costs nothing.
_POOLED: tuple = ()

#: Free-list cap per simulator; beyond this, fired handles are dropped.
_EV_POOL_MAX = 4096


class _PooledEvent(Event):
    """A fire-and-forget :class:`Event` recycled through the simulator's
    free list after it fires.  Never hand its handle to code that might
    retain or cancel it past the firing — the object will be reused."""

    __slots__ = ()

    times = _POOLED


class SeriesEvent(Event):
    """One handle that fires at every time of a precomputed schedule.

    ``times`` is an ascending list of absolute fire times; ``index`` is
    the position currently queued (or just fired).  After each firing the
    engine re-inserts the same handle at the next time with a fresh
    ``seq`` — allocated *after* the callback returns, exactly where a
    self-rescheduling handler's trailing ``schedule()`` call would have
    drawn it, so interleaving with events the callback schedules is
    bit-identical to the unbatched formulation.

    The callback may append to :attr:`times` (see :meth:`extend`) to
    continue the series past the current horizon chunk, and calls
    :meth:`stop` to end it (e.g. when its source is stopped).
    """

    __slots__ = ("times", "index", "_stop", "_queued")

    def __init__(self, time, priority, seq, fn, args, sim, times) -> None:
        super().__init__(time, priority, seq, fn, args, sim)
        self.times: list[float] = times
        self.index = 0
        self._stop = False
        self._queued = True

    def extend(self, more_times) -> None:
        """Append further ascending fire times to the schedule.

        Validated like :meth:`Simulator.schedule_series`: every appended
        time must be finite and no earlier than the schedule's current
        last time — this is an insertion path into the queue, and an
        unchecked NaN here would corrupt the clock exactly like the
        ``schedule_at`` bug this PR fixes.  Nothing is appended unless
        every time passes.

        The already-consumed prefix is pruned here (the current time
        stays at position 0), so a long-lived periodic source holds one
        horizon chunk, not its whole departure history.
        """
        new_times = [float(t) for t in more_times]
        times = self.times
        prev = times[-1]
        for t in new_times:
            if not (prev <= t < math.inf):
                raise ValueError(
                    "series times must be finite and ascending "
                    f"(got {t} after {prev})"
                )
            prev = t
        index = self.index
        if index:
            del times[:index]
            self.index = 0
        times.extend(new_times)

    def stop(self) -> None:
        """End the series: no further firings.

        From inside the callback this ends the series after the current
        firing; called externally while the next firing is queued, it
        cancels that firing too (without this, a quiesced source would
        still fire once more).
        """
        if self._queued:
            self.cancel()
        else:
            self._stop = True

    def cancel(self) -> None:
        """Cancel the series: drop the queued entry, or stop it mid-fire."""
        if self.fn is None:
            return
        if self._queued:
            super().cancel()
        else:
            # Being executed right now: the run loop owns the entry, so
            # there is no queue bookkeeping to fix — just end the series.
            self._stop = True


class _HeapQueue:
    """PR 1's tuple heap behind the shared backend interface."""

    __slots__ = ("_heap", "dead", "size", "peak", "pushes")

    kind = "heap"

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self.dead = 0  # cancelled entries not yet discarded
        self.size = 0  # queued entries, live + dead
        self.peak = 0
        self.pushes = 0  # total insertions (churn metric for benchmarks)

    def push(self, entry: tuple[float, int, int, Event]) -> None:
        heapq.heappush(self._heap, entry)
        self.pushes += 1
        size = self.size + 1
        self.size = size
        if size > self.peak:
            self.peak = size

    def first_time(self) -> float:
        """Time of the earliest live entry, or ``inf`` when empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            ev = entry[3]
            if ev.fn is None:
                heapq.heappop(heap)
                self.dead -= 1
                self.size -= 1
            elif entry[2] != ev.seq:
                # Stale (postponed) tuple: re-file at the true deadline.
                heapq.heappop(heap)
                heapq.heappush(heap, (ev.time, ev.priority, ev.seq, ev))
                self.pushes += 1
            else:
                return entry[0]
        return math.inf

    def note_cancel(self, live: int) -> None:
        self.dead += 1
        if self.dead > _COMPACT_MIN_DEAD and self.dead > live:
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled tuple and re-heapify (amortized O(n));
        stale (postponed) tuples are re-filed at their true deadlines."""
        heap = self._heap
        fresh = []
        for entry in heap:
            ev = entry[3]
            if ev.fn is None:
                continue
            if entry[2] != ev.seq:
                entry = (ev.time, ev.priority, ev.seq, ev)
            fresh.append(entry)
        heap[:] = fresh
        heapq.heapify(heap)
        self.dead = 0
        self.size = len(heap)

    def run_loop(self, sim: "Simulator", limit: float, cap: float) -> None:
        """The event loop, specialized for the heap (see Simulator.run).

        Mirrors :meth:`_CalendarQueue.run_loop` — the dequeue mechanics
        are inlined per backend so the per-event cost carries no method
        dispatch; the execute/series semantics must stay in lockstep.
        """
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        next_seq = sim._next_seq
        ev_pool = sim._ev_pool
        executed = 0
        while not sim._stopped:
            if not heap:
                break
            entry = heap[0]
            ev = entry[3]
            fn = ev.fn
            if fn is None:
                heappop(heap)
                self.dead -= 1
                self.size -= 1
                continue
            if entry[2] != ev.seq:
                # Stale (postponed) tuple: re-file at the true deadline
                # without executing — the live/size bookkeeping nets zero.
                heappop(heap)
                heappush(heap, (ev.time, ev.priority, ev.seq, ev))
                self.pushes += 1
                continue
            time = entry[0]
            if time > limit:
                break
            heappop(heap)
            self.size -= 1
            sim._live -= 1
            sim._now = time
            times = ev.times
            if times is None:
                ev.fn = None  # consumed; a late cancel() must be a no-op
                fn(*ev.args)
            elif times is _POOLED:
                ev.fn = None
                fn(*ev.args)
                ev.args = ()
                if len(ev_pool) < _EV_POOL_MAX:
                    ev_pool.append(ev)
            else:
                ev._queued = False
                fn(*ev.args)
                if not ev._stop:
                    index = ev.index + 1
                    if index < len(times):
                        ev.index = index
                        t2 = times[index]
                        seq = next_seq()
                        ev.time = t2
                        ev.seq = seq
                        ev._queued = True
                        heappush(heap, (t2, entry[1], seq, ev))
                        self.pushes += 1
                        size = self.size + 1
                        self.size = size
                        if size > self.peak:
                            self.peak = size
                        sim._live += 1
                    else:
                        ev.fn = None
                else:
                    ev.fn = None
            sim.events_executed += 1
            executed += 1
            if executed >= cap:
                break


class _CalendarQueue:
    """Array-backed calendar queue with an overflow heap.

    The wheel maps the window ``[start, start + nbuckets * width)`` onto
    ``nbuckets`` buckets; an entry's bucket is a float multiply and a
    push.  Each bucket is itself a *small heap*, so the bucket minimum is
    ``bucket[0]`` (O(1) peek) and insert/remove are C-speed sifts over a
    handful of entries instead of ``log n`` of the whole pending set.
    Entries beyond the window wait in a far-future binary heap and
    migrate in when the wheel empties and re-anchors at their epoch.
    Popping scans forward from a monotone hint to the first non-empty
    bucket.

    The bucket width re-tunes on resize (triggered when the live count
    outgrows or undershoots the bucket count) to a small multiple of the
    median inter-event gap near the head, so both dense packet bursts and
    sparse timer-only phases keep O(1)-ish bucket occupancy — including
    heavily skewed schedules where a mean would be dragged by outliers.
    """

    __slots__ = (
        "_buckets", "_n", "_width", "_inv_width", "_start", "_end", "_hint",
        "_wheel_count", "_over", "_grow_at", "_shrink_at", "resizes",
        "dead", "size", "peak", "pushes",
    )

    kind = "calendar"

    _MIN_BUCKETS = 64
    _MAX_BUCKETS = 1 << 15
    _MIN_WIDTH = 1e-9
    _MAX_WIDTH = 1e6

    def __init__(self) -> None:
        self._n = 256
        self._width = 1.0 / 1024.0
        self._inv_width = 1024.0
        self._buckets: list[list[tuple[float, int, int, Event]]] = [
            [] for _ in range(self._n)
        ]
        self._start: float | None = None  # wheel not anchored yet
        self._end = 0.0
        self._hint = 0  # no non-empty bucket below this index
        self._wheel_count = 0  # entries (live + dead) in the wheel
        self._over: list[tuple[float, int, int, Event]] = []  # far future
        self._grow_at = 2 * self._n
        self._shrink_at = self._n // 8
        self.resizes = 0
        self.dead = 0
        self.size = 0
        self.peak = 0
        self.pushes = 0  # total insertions (churn metric for benchmarks)

    # ------------------------------------------------------------- insert

    def push(self, entry: tuple[float, int, int, Event]) -> None:
        self.pushes += 1
        t = entry[0]
        start = self._start
        if start is None:
            self._anchor(t)
            start = self._start
        if t < self._end:
            # Multiply instead of divide; any monotone time->bucket map
            # preserves ordering, so the cheaper rounding is safe.
            i = int((t - start) * self._inv_width)
            # Clamp: times below the anchor (possible after the wheel
            # advanced past them) collapse into bucket 0, which is always
            # scanned first; float edge cases clamp into the last bucket.
            if i < 0:
                i = 0
            elif i >= self._n:
                i = self._n - 1
            heapq.heappush(self._buckets[i], entry)
            self._wheel_count += 1
            if i < self._hint:
                self._hint = i
        else:
            heapq.heappush(self._over, entry)
        size = self.size + 1
        self.size = size
        if size > self.peak:
            self.peak = size
        if size - self.dead > self._grow_at and self._n < self._MAX_BUCKETS:
            self._resize(self._n * 2)

    # --------------------------------------------------------------- pop

    def pop_next(self, limit: float):
        """Pop and return the earliest live entry with ``time <= limit``."""
        heappop = heapq.heappop
        while True:
            if self._wheel_count == 0:
                over = self._over
                while over and over[0][3].fn is None:
                    heappop(over)
                    self.dead -= 1
                    self.size -= 1
                if not over:
                    return None
                # Jump the wheel window to the overflow epoch.
                self._anchor(over[0][0])
                self._migrate_overflow()
                continue
            buckets = self._buckets
            n = self._n
            b = self._hint
            stale = False
            while b < n:
                bucket = buckets[b]
                if not bucket:
                    b += 1
                    continue
                best = bucket[0]
                ev = best[3]
                if ev.fn is None:  # purge dead heads lazily
                    heappop(bucket)
                    self._wheel_count -= 1
                    self.size -= 1
                    self.dead -= 1
                    continue
                if best[2] != ev.seq:
                    # Stale (postponed) tuple: re-file at the true
                    # deadline.  push() may resize and invalidate every
                    # local, so restart the scan from the top.
                    self._hint = b
                    heappop(bucket)
                    self._wheel_count -= 1
                    self.size -= 1
                    self.push((ev.time, ev.priority, ev.seq, ev))
                    stale = True
                    break
                self._hint = b
                if best[0] > limit:
                    return None
                heappop(bucket)
                self._wheel_count -= 1
                size = self.size - 1
                self.size = size
                if size - self.dead < self._shrink_at and self._n > self._MIN_BUCKETS:
                    self._resize(self._n // 2)
                return best
            if stale:
                continue
            # Scanned the whole window without finding an entry: the
            # wheel is empty — retry via the overflow/anchor path.
            self._hint = n
            if self._wheel_count:  # defensive recount; never expected
                self._wheel_count = sum(len(bk) for bk in buckets)
                if self._wheel_count:
                    self._hint = 0
            continue

    def first_time(self) -> float:
        """Time of the earliest live entry, or ``inf`` when empty."""
        entry = self.pop_next(-math.inf)  # never pops (limit below any time)
        if entry is not None:  # pragma: no cover - defensive
            self.push(entry)
            return entry[0]
        # pop_next(-inf) returns None either on empty or via the
        # limit-check with self._hint left at the min bucket.
        if self._wheel_count:
            bucket = self._buckets[self._hint]
            if bucket:
                return bucket[0][0]
        return self._over[0][0] if self._over else math.inf

    # --------------------------------------------------------- cancel/gc

    def note_cancel(self, live: int) -> None:
        self.dead += 1
        if self.dead > _COMPACT_MIN_DEAD and self.dead > live:
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry and rebuild (amortized O(n))."""
        self._resize(self._n)

    def run_loop(self, sim: "Simulator", limit: float, cap: float) -> None:
        """The event loop, specialized for the wheel (see Simulator.run).

        Mirrors :meth:`_HeapQueue.run_loop`; the execute/series semantics
        must stay in lockstep — only the dequeue mechanics differ.
        """
        heappop = heapq.heappop
        next_seq = sim._next_seq
        ev_pool = sim._ev_pool
        executed = 0
        while not sim._stopped:
            # -- dequeue: earliest live entry, or advance/stop ----------
            if self._wheel_count == 0:
                over = self._over
                while over and over[0][3].fn is None:
                    heappop(over)
                    self.dead -= 1
                    self.size -= 1
                if not over:
                    break
                self._anchor(over[0][0])
                self._migrate_overflow()
                continue
            buckets = self._buckets
            n = self._n
            b = self._hint
            entry = None
            stale = False
            while b < n:
                bucket = buckets[b]
                if not bucket:
                    b += 1
                    continue
                best = bucket[0]
                ev = best[3]
                if ev.fn is None:  # purge dead heads lazily
                    heappop(bucket)
                    self._wheel_count -= 1
                    self.size -= 1
                    self.dead -= 1
                    continue
                if best[2] != ev.seq:
                    # Stale (postponed) tuple: re-file at the true
                    # deadline; push() may resize, so restart the scan.
                    self._hint = b
                    heappop(bucket)
                    self._wheel_count -= 1
                    self.size -= 1
                    self.push((ev.time, ev.priority, ev.seq, ev))
                    stale = True
                    break
                self._hint = b
                if best[0] > limit:
                    return
                heappop(bucket)
                self._wheel_count -= 1
                size = self.size - 1
                self.size = size
                if size - self.dead < self._shrink_at and n > self._MIN_BUCKETS:
                    self._resize(n // 2)
                entry = best
                break
            if stale:
                continue
            if entry is None:
                # Scanned the whole window: wheel is (effectively) empty.
                self._hint = n
                if self._wheel_count:  # defensive recount; never expected
                    self._wheel_count = sum(len(bk) for bk in buckets)
                    if self._wheel_count:
                        self._hint = 0
                continue
            # -- execute (kept in lockstep with the heap loop) ----------
            ev = entry[3]
            fn = ev.fn
            sim._live -= 1
            sim._now = entry[0]
            times = ev.times
            if times is None:
                ev.fn = None  # consumed; a late cancel() must be a no-op
                fn(*ev.args)
            elif times is _POOLED:
                ev.fn = None
                fn(*ev.args)
                ev.args = ()
                if len(ev_pool) < _EV_POOL_MAX:
                    ev_pool.append(ev)
            else:
                ev._queued = False
                fn(*ev.args)
                if not ev._stop:
                    index = ev.index + 1
                    if index < len(times):
                        ev.index = index
                        t2 = times[index]
                        seq = next_seq()
                        ev.time = t2
                        ev.seq = seq
                        ev._queued = True
                        self.push((t2, entry[1], seq, ev))
                        sim._live += 1
                    else:
                        ev.fn = None
                else:
                    ev.fn = None
            sim.events_executed += 1
            executed += 1
            if executed >= cap:
                break

    # ----------------------------------------------------------- internals

    def _anchor(self, t: float) -> None:
        """Re-anchor the (empty) wheel window so that ``t`` lands in it."""
        width = self._width
        self._start = math.floor(t / width) * width
        self._end = self._start + self._n * width
        self._hint = 0

    def _migrate_overflow(self) -> None:
        """Pull overflow entries that now fall inside the wheel window."""
        over = self._over
        end = self._end
        start = self._start
        inv_width = self._inv_width
        n = self._n
        buckets = self._buckets
        while over and over[0][0] < end:
            entry = heapq.heappop(over)
            if entry[3].fn is None:
                self.dead -= 1
                self.size -= 1
                continue
            i = int((entry[0] - start) * inv_width)
            if i < 0:
                i = 0
            elif i >= n:
                i = n - 1
            # Ascending heap-pops appended to an empty bucket keep the
            # bucket-heap invariant (a sorted list is a valid heap).
            buckets[i].append(entry)
            self._wheel_count += 1

    def _live_entries(self) -> list[tuple[float, int, int, Event]]:
        entries = [
            e for bucket in self._buckets for e in bucket if e[3].fn is not None
        ]
        entries.extend(e for e in self._over if e[3].fn is not None)
        # Re-file stale (postponed) tuples at their true deadlines.
        for i, e in enumerate(entries):
            ev = e[3]
            if e[2] != ev.seq:
                entries[i] = (ev.time, ev.priority, ev.seq, ev)
        return entries

    def _resize(self, n: int) -> None:
        """Rebuild with ``n`` buckets and a re-tuned width (purges dead)."""
        entries = self._live_entries()
        self.resizes += 1
        self._n = n
        self._grow_at = 2 * n
        self._shrink_at = n // 8
        self._width = self._tune_width(entries)
        self._inv_width = 1.0 / self._width
        self._buckets = [[] for _ in range(n)]
        self._over = []
        self._wheel_count = 0
        self.dead = 0
        self.size = 0
        peak = self.peak
        pushes = self.pushes
        if entries:
            self._anchor(min(e[0] for e in entries))
        else:
            self._start = None
        for entry in entries:
            self.push(entry)
        self.peak = peak
        self.pushes = pushes  # re-filing existing entries is not churn

    def _tune_width(self, entries) -> float:
        """Bucket width ~ 2x the median inter-event gap near the head.

        The median (over the soonest ~128 events, zero gaps dropped) is
        robust to the two ways schedules skew: bursts of same-time events
        would drag an average to zero, and a handful of far-future timers
        (RTO backoffs) would stretch it to seconds.
        """
        if len(entries) < 2:
            return self._width
        times = sorted(e[0] for e in entries)[:128]
        gaps = sorted(
            b - a for a, b in zip(times, times[1:]) if b > a
        )
        if not gaps:
            return self._width
        width = 2.0 * gaps[len(gaps) // 2]
        return min(self._MAX_WIDTH, max(self._MIN_WIDTH, width))


_BACKENDS = {"heap": _HeapQueue, "calendar": _CalendarQueue}

_new_event = object.__new__


class Simulator:
    """The discrete-event clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, my_handler, arg1, arg2)
        sim.run(until=10.0)

    Handlers receive their args verbatim; they query ``sim.now`` for the
    current time and call :meth:`schedule` / :meth:`schedule_at` to continue
    the computation.

    ``queue`` selects the backend: ``"heap"`` (the default — C-compiled
    heapq wins at the pending-set sizes these scenarios reach) or
    ``"calendar"`` (see module docstring).  Both execute the identical
    event sequence; the golden-master suite pins this bit-exactly.
    """

    def __init__(self, queue: str | None = None) -> None:
        if queue is None:
            queue = FLAGS.queue
        try:
            backend = _BACKENDS[queue]
        except KeyError:
            raise ValueError(
                f"unknown queue backend {queue!r}; expected one of "
                f"{sorted(_BACKENDS)}"
            ) from None
        self._now = 0.0
        self._q = backend()
        self._next_seq = itertools.count().__next__
        self._live = 0  # non-cancelled entries still queued
        self._running = False
        self._stopped = False
        self.events_executed = 0
        self._ev_pool: list[Event] = []  # recycled fire-and-forget handles
        self._ev_created = 0
        self._ev_reused = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def queue_kind(self) -> str:
        """Which queue backend this simulator runs on."""
        return self._q.kind

    def queue_stats(self) -> dict:
        """Occupancy counters of the queue backend (for benchmarks)."""
        q = self._q
        return {
            "backend": q.kind,
            "queued": q.size,
            "live": self._live,
            "peak_occupancy": q.peak,
            "dead": q.dead,
            "pushes": q.pushes,
            "resizes": getattr(q, "resizes", 0),
            "event_pool_created": self._ev_created,
            "event_pool_reused": self._ev_reused,
        }

    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time.__class__ is not float:  # fast path: already a float
            time = float(time)
        # One interval check covers past times AND the non-finite values
        # a naive ``time < now`` lets through (NaN compares False against
        # everything; +inf would park an unreachable event forever).
        if not (self._now <= time < math.inf):
            if math.isfinite(time):
                raise ValueError(
                    f"cannot schedule into the past (time={time}, now={self._now})"
                )
            raise ValueError(f"event time must be finite, got {time}")
        if not callable(fn):
            raise TypeError("fn must be callable")
        seq = self._next_seq()
        # Inline construction (object.__new__ + stores) skips one Python
        # call frame on the busiest allocation site in the simulator.
        # PyEvent, not Event: the public name rebinds to the compiled
        # class when the extension loads, and this reference implementation
        # must keep building its own events either way.
        ev = _new_event(PyEvent)
        ev.time = time
        ev.priority = priority
        ev.seq = seq
        ev.fn = fn
        ev.args = args
        ev._sim = self
        self._q.push((time, priority, seq, ev))
        self._live += 1
        return ev

    def schedule_anon(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """``schedule_at`` for fire-and-forget callbacks.

        The handle comes from a per-simulator free list and is recycled
        the moment the event fires, so hot fire-and-forget sites (link
        drain wake-ups and deliveries) stop allocating.  The caller MUST
        discard the returned handle — retaining or cancelling it after
        the firing observes a recycled object.  Draws one ``seq``, like
        ``schedule_at``, so the event order is bit-identical either way.
        """
        if not FLAGS.event_pool:
            return self.schedule_at(time, fn, *args, priority=priority)
        if time.__class__ is not float:
            time = float(time)
        if not (self._now <= time < math.inf):
            if math.isfinite(time):
                raise ValueError(
                    f"cannot schedule into the past (time={time}, now={self._now})"
                )
            raise ValueError(f"event time must be finite, got {time}")
        if not callable(fn):
            raise TypeError("fn must be callable")
        seq = self._next_seq()
        pool = self._ev_pool
        if pool:
            ev = pool.pop()
            self._ev_reused += 1
        else:
            ev = _new_event(_PooledEvent)
            ev._sim = self
            self._ev_created += 1
        ev.time = time
        ev.priority = priority
        ev.seq = seq
        ev.fn = fn
        ev.args = args
        self._q.push((time, priority, seq, ev))
        self._live += 1
        return ev

    def postpone(self, ev: Event, time: float) -> Event:
        """Move a pending event's deadline, cheaply when it moves later.

        Semantically identical to ``ev.cancel()`` followed by
        ``schedule_at(time, fn, *args)`` with the same callback, priority
        and argument tuple — including drawing exactly one ``seq`` — but
        when the new deadline is no earlier than the current one the
        queued tuple is left in place and only the handle is updated
        (O(1), no queue traffic).  The stale tuple is silently re-filed
        when it surfaces.  Deadlines moving *earlier* fall back to the
        eager cancel+reschedule.  Returns the handle to keep (the same
        object on the lazy path, a fresh one on the fallback).
        """
        fn = ev.fn
        if fn is None:
            raise ValueError("cannot postpone a cancelled or fired event")
        if ev.times is not None:
            raise ValueError("cannot postpone a series or pooled event")
        if ev._sim is not self:
            raise ValueError("event belongs to a different simulator")
        if time.__class__ is not float:
            time = float(time)
        if ev.time <= time < math.inf:
            ev.time = time
            ev.seq = self._next_seq()
            return ev
        args = ev.args
        priority = ev.priority
        ev.cancel()
        return self.schedule_at(time, fn, *args, priority=priority)

    def schedule_series(
        self,
        times,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> SeriesEvent:
        """Schedule ``fn(*args)`` at every time of an ascending schedule.

        ``times`` must be non-empty, ascending, finite, and start no
        earlier than ``now``.  Returns the reusable :class:`SeriesEvent`
        handle; the callback may :meth:`~SeriesEvent.extend` it with the
        next horizon chunk or :meth:`~SeriesEvent.stop` it.  Occupies one
        queue slot at a time and counts one pending event.
        """
        times = [float(t) for t in times]
        if not times:
            raise ValueError("schedule_series needs at least one time")
        prev = self._now
        for t in times:
            if not (prev <= t < math.inf):
                raise ValueError(
                    "series times must be finite, ascending, and not in "
                    f"the past (got {t} after {prev})"
                )
            prev = t
        if not callable(fn):
            raise TypeError("fn must be callable")
        seq = self._next_seq()
        # PySeriesEvent: see schedule_at — never the rebound public name.
        ev = PySeriesEvent(times[0], priority, seq, fn, args, self, times)
        self._q.push((times[0], priority, seq, ev))
        self._live += 1
        return ev

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def peek_time(self) -> float:
        """Time of the next pending event, or ``inf`` when the queue is empty."""
        return self._q.first_time()

    def pending(self) -> int:
        """Number of non-cancelled events currently queued (O(1))."""
        return self._live

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events until the queue drains, ``until`` passes, or
        ``max_events`` have run.  Returns the simulation time reached.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so periodic measurements line up.
        """
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        self._stopped = False
        limit = math.inf if until is None else until
        cap = math.inf if max_events is None else max_events
        try:
            # The loop itself lives on the backend (one specialized,
            # fully inlined implementation per queue; identical execute
            # and series semantics — see the run_loop docstrings).
            self._q.run_loop(self, limit, cap)
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = float(until)
        return self._now

    # ------------------------------------------------------------ internals

    def _on_cancel(self, ev: Event) -> None:
        """Bookkeeping for a handle cancelled while still queued."""
        self._live -= 1
        self._q.note_cancel(self._live)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Simulator(now={self._now:.6f}, pending={self._live}, "
            f"queue={self._q.kind})"
        )


# --------------------------------------------------------------------------
# Compiled-core swap-in.  The pure-Python classes above are the reference
# implementation and stay importable as PySimulator/PyEvent/PySeriesEvent
# (the fuzz and parity tests compare both cores in one process).  When the
# C extension is present (and REPRO_NO_COMPILED is unset) the public names
# rebind to the compiled twins — same API, same bit-exact event order.

PyEvent = Event
PySeriesEvent = SeriesEvent
PySimulator = Simulator

from repro.sim._core import ENGINE_IMPL, compiled as _compiled  # noqa: E402

if _compiled is not None:
    Event = _compiled.Event
    SeriesEvent = _compiled.SeriesEvent
    Simulator = _compiled.Simulator
