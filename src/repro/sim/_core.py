"""Select the compiled engine core, falling back to pure Python.

The compiled core (``repro.sim._corec``, a C extension built by
``python setup.py build_ext --inplace``) is a bit-exact twin of the
pure-Python engine in :mod:`repro.sim.engine`: same event order, same
seq draws, same counters, same exception messages.  The golden-master
suite and the scheduler fuzz test pin the equivalence, so which core
runs is purely a speed decision.

Selection rules:

* ``REPRO_NO_COMPILED`` set (to anything non-empty) forces the pure
  engine — the escape hatch for debugging and for measuring the
  pure-Python baseline in benchmarks.
* Otherwise the extension is imported if present; *any* failure (not
  built, ABI mismatch, missing compiler) falls back silently.  Importing
  repro must never require a C toolchain.

``ENGINE_IMPL`` is ``"compiled"`` or ``"pure"``; :func:`core_info`
returns a dict for CLI/CI introspection (``repro run --engine-info``).
"""

from __future__ import annotations

import os

ENGINE_IMPL = "pure"
compiled = None  # the _corec module when active, else None

if not os.environ.get("REPRO_NO_COMPILED"):
    try:
        from repro.sim import _corec as compiled  # type: ignore[no-redef]
    except Exception:  # pragma: no cover - absent/broken extension
        compiled = None
    else:
        ENGINE_IMPL = "compiled"


def core_info() -> dict:
    """Which engine core is active, and why (for ``--engine-info``)."""
    return {
        "impl": ENGINE_IMPL,
        "module": compiled.__name__ if compiled is not None else
                  "repro.sim.engine",
        "forced_pure": bool(os.environ.get("REPRO_NO_COMPILED")),
    }
