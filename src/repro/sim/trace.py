"""Event tracing: a structured record of what happened in a run.

Used by tests (assert a probe was sent, a flow was cut) and by the Fig. 4b
time-series reconstruction.  Tracing is opt-in and cheap when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    detail: dict[str, Any] = field(default_factory=dict)


class EventTrace:
    """Append-only event log with category filtering.

    Categories used across the library:

    - ``"drop.probe"`` — MAFIC dropped a packet during probing
    - ``"drop.pdt"`` — dropped because the flow is in the PDT
    - ``"drop.queue"`` — queue overflow
    - ``"probe.sent"`` — duplicate-ACK probe emitted
    - ``"flow.nice"`` / ``"flow.cut"`` — SFT verdicts
    - ``"pushback.start"`` / ``"pushback.stop"`` — control plane
    """

    def __init__(self, enabled: bool = True, max_records: int | None = None) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self._records: list[TraceRecord] = []
        self.dropped_records = 0

    def record(self, time: float, category: str, **detail: Any) -> None:
        """Append one record (no-op when disabled or full)."""
        if not self.enabled:
            return
        if self.max_records is not None and len(self._records) >= self.max_records:
            self.dropped_records += 1
            return
        self._records.append(TraceRecord(time=time, category=category, detail=detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def select(self, category: str) -> list[TraceRecord]:
        """All records of one category (prefix match with trailing '.')."""
        if category.endswith("."):
            return [r for r in self._records if r.category.startswith(category)]
        return [r for r in self._records if r.category == category]

    def count(self, category: str) -> int:
        """Number of records of one category."""
        return len(self.select(category))

    def between(self, start: float, end: float) -> list[TraceRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self._records if start <= r.time < end]

    def categories(self) -> set[str]:
        """Distinct categories present."""
        return {r.category for r in self._records}

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
        self.dropped_records = 0

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Bulk-append (merging traces from sub-components)."""
        for record in records:
            if self.max_records is not None and len(self._records) >= self.max_records:
                self.dropped_records += 1
                continue
            self._records.append(record)
