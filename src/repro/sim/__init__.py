"""Discrete-event network simulator — the NS-2 replacement substrate.

The paper evaluates MAFIC inside NS-2; this package provides the minimal
faithful equivalent: an event-heap scheduler (:mod:`repro.sim.engine`),
packets with IP/TCP-ish headers (:mod:`repro.sim.packet`), simplex links
with bandwidth/delay and drop-tail or RED queues (:mod:`repro.sim.link`,
:mod:`repro.sim.queues`), hosts and routers with static shortest-path
routing (:mod:`repro.sim.node`, :mod:`repro.sim.routing`), topology
generators (:mod:`repro.sim.topology`), a TrafficMonitor that periodically
computes the set-union traffic matrix (:mod:`repro.sim.monitor`), and an
event tracer (:mod:`repro.sim.trace`).

NS-2 attaches ``Connector`` objects at the head of each ``SimplexLink``;
our :class:`~repro.sim.link.SimplexLink` exposes the same seam through
``add_head_hook``, which is where both the LogLog counters and the MAFIC
dropper plug in.
"""

from repro.sim.address import AddressSpace, IPv4Address, Subnet
from repro.sim.engine import Event, Simulator
from repro.sim.link import SimplexLink
from repro.sim.node import Host, Node, Router
from repro.sim.packet import FlowKey, Packet, PacketType
from repro.sim.queues import DropTailQueue, DRRQueue, PacketQueue, REDQueue
from repro.sim.routing import RoutingTable, build_static_routes
from repro.sim.topology import (
    Topology,
    build_dumbbell,
    build_star_domain,
    build_transit_stub_domain,
    build_tree_domain,
)
from repro.sim.monitor import TrafficMonitor
from repro.sim.trace import EventTrace, TraceRecord

__all__ = [
    "AddressSpace",
    "DRRQueue",
    "DropTailQueue",
    "Event",
    "EventTrace",
    "FlowKey",
    "Host",
    "IPv4Address",
    "Node",
    "Packet",
    "PacketQueue",
    "PacketType",
    "REDQueue",
    "Router",
    "RoutingTable",
    "Simulator",
    "SimplexLink",
    "Subnet",
    "Topology",
    "TraceRecord",
    "TrafficMonitor",
    "build_dumbbell",
    "build_star_domain",
    "build_static_routes",
    "build_transit_stub_domain",
    "build_tree_domain",
]
