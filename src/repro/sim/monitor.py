"""TrafficMonitor: periodic traffic-matrix computation.

Mirrors the paper's Section IV: "The TrafficMonitor keeps track of all
LogLogCounter objects and for each time period, it will be triggered to
compute the traffic matrix for this time period using the set-union
counting algorithm."

The monitor owns a :class:`~repro.counting.setunion.TrafficMatrixEstimator`
and snapshots it every ``period`` seconds, keeping the history of matrices
for the pushback coordinator (victim detection / ATR identification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.counting.setunion import TrafficMatrixEstimator
    from repro.sim.engine import Simulator


@dataclass
class MatrixSnapshot:
    """One monitoring epoch's estimated traffic matrix."""

    time: float
    sources: list[str]
    destinations: list[str]
    matrix: "np.ndarray"  # shape (len(sources), len(destinations))
    ingress_totals: dict[str, float]  # |Si| estimates
    egress_totals: dict[str, float]  # |Dj| estimates


class TrafficMonitor:
    """Periodic driver of the set-union counting estimator.

    Parameters
    ----------
    sim:
        The simulation clock to schedule epochs on.
    estimator:
        The set-union traffic-matrix estimator fed by the per-link
        LogLog counters.
    period:
        Epoch length in seconds.
    on_snapshot:
        Optional callback invoked with each new :class:`MatrixSnapshot`
        (the pushback coordinator registers here).
    reset_each_epoch:
        When True (default, matching the paper's per-period matrices) the
        sketches are cleared after each snapshot.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`: each epoch publishes
        a ``monitor.snapshot`` event plus an ``engine.stats`` event
        (scheduler occupancy piggybacked on the epoch, so observability
        adds **no** simulation events of its own — the event stream,
        and thus the golden master, is unchanged).
    """

    def __init__(
        self,
        sim: "Simulator",
        estimator: "TrafficMatrixEstimator",
        period: float = 0.25,
        on_snapshot: Callable[[MatrixSnapshot], None] | None = None,
        reset_each_epoch: bool = True,
        bus=None,
    ) -> None:
        from repro.obs.bus import NULL_BUS

        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.estimator = estimator
        self.period = float(period)
        self.on_snapshot = on_snapshot
        self.reset_each_epoch = reset_each_epoch
        self.bus = bus if bus is not None else NULL_BUS
        self.snapshots: list[MatrixSnapshot] = []
        self._started = False

    def start(self, delay: float | None = None) -> None:
        """Begin periodic epochs (first snapshot after one period)."""
        if self._started:
            raise RuntimeError("TrafficMonitor already started")
        self._started = True
        self.sim.schedule(self.period if delay is None else delay, self._tick)

    def _tick(self) -> None:
        snapshot = self.take_snapshot()
        if self.on_snapshot is not None:
            self.on_snapshot(snapshot)
        if self.reset_each_epoch:
            self.estimator.reset()
        self.sim.schedule(self.period, self._tick)

    def take_snapshot(self) -> MatrixSnapshot:
        """Compute the traffic matrix for the current epoch."""
        sources, destinations, matrix = self.estimator.traffic_matrix()
        snapshot = MatrixSnapshot(
            time=self.sim.now,
            sources=sources,
            destinations=destinations,
            matrix=matrix,
            ingress_totals=self.estimator.ingress_totals(),
            egress_totals=self.estimator.egress_totals(),
        )
        self.snapshots.append(snapshot)
        if self.bus:
            self._publish(snapshot)
        return snapshot

    def _publish(self, snapshot: MatrixSnapshot) -> None:
        """Emit the epoch's snapshot + scheduler stats onto the bus."""
        bus = self.bus
        if not bus:
            return
        from repro.obs.events import EngineStats, MonitorSnapshot

        bus.emit(MonitorSnapshot(
            time=snapshot.time,
            epoch=len(self.snapshots),
            n_sources=len(snapshot.sources),
            n_destinations=len(snapshot.destinations),
            ingress_total=float(sum(snapshot.ingress_totals.values())),
            egress_total=float(sum(snapshot.egress_totals.values())),
        ))
        stats = self.sim.queue_stats()
        bus.emit(EngineStats(
            time=snapshot.time,
            backend=stats["backend"],
            events_executed=self.sim.events_executed,
            pending=stats["live"],
            peak_occupancy=stats["peak_occupancy"],
        ))

    @property
    def latest(self) -> MatrixSnapshot | None:
        """Most recent snapshot, if any."""
        return self.snapshots[-1] if self.snapshots else None
