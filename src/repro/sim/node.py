"""Hosts and routers.

A :class:`Node` owns its outgoing links and forwards packets via a routing
table (routers) or delivers them to attached agents (hosts).  Agents — TCP
senders, sinks, attack sources, MAFIC itself on the control plane —
register per-port handlers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

from repro.sim.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.link import SimplexLink
    from repro.sim.routing import RoutingTable


class PacketHandler(Protocol):
    """Anything that can accept a delivered packet."""

    def handle_packet(self, packet: Packet, now: float) -> None: ...


class Node:
    """Base network element: named, addressable, link-connected."""

    def __init__(self, sim: "Simulator", name: str, address: int | None = None) -> None:
        self.sim = sim
        self.name = name
        self.address = address  # routers may be address-less
        self._links_out: dict[str, "SimplexLink"] = {}  # keyed by dst node name
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_dropped_no_route = 0
        self.packets_delivered = 0

    def attach_link(self, link: "SimplexLink") -> None:
        """Register an outgoing link (called by topology builders)."""
        if link.src is not self:
            raise ValueError(f"link {link.name} does not originate at {self.name}")
        self._links_out[link.dst.name] = link

    def link_to(self, dst_name: str) -> "SimplexLink | None":
        """Outgoing link towards the named neighbour, if any."""
        return self._links_out.get(dst_name)

    @property
    def links_out(self) -> tuple["SimplexLink", ...]:
        """All outgoing links."""
        return tuple(self._links_out.values())

    def receive(self, packet: Packet, via: "SimplexLink | None" = None) -> None:
        """Entry point for packets arriving at this node."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name})"


class Router(Node):
    """A store-and-forward router with a static routing table.

    ``local_delivery`` handlers receive packets addressed to hosts this
    router fronts for (the last-hop case).  The router is also where
    control-plane agents (pushback coordinator) can be attached.
    """

    def __init__(self, sim: "Simulator", name: str, address: int | None = None) -> None:
        super().__init__(sim, name, address)
        self.routing_table: "RoutingTable | None" = None
        self._local_subnet_handlers: list[tuple[Callable[[int], bool], PacketHandler]] = []
        self._control_handlers: list[PacketHandler] = []

    def add_local_delivery(
        self, matches: Callable[[int], bool], handler: PacketHandler
    ) -> None:
        """Deliver packets whose dst matches the predicate to ``handler``."""
        self._local_subnet_handlers.append((matches, handler))

    def add_control_handler(self, handler: PacketHandler) -> None:
        """Receive CONTROL packets addressed to this router."""
        self._control_handlers.append(handler)

    def receive(self, packet: Packet, via: "SimplexLink | None" = None) -> None:
        """Forward per routing table, or deliver locally."""
        self.packets_received += 1
        dst_ip = packet.flow.dst_ip
        if packet.ptype is PacketType.CONTROL and dst_ip == (self.address or -1):
            now = self.sim.now
            for handler in self._control_handlers:
                handler.handle_packet(packet, now)
            self.packets_delivered += 1
            packet.release()  # control handlers copy what they keep
            return
        for matches, handler in self._local_subnet_handlers:
            if matches(dst_ip):
                # Local delivery handlers may forward the packet onward
                # (e.g. down a host access link), so ownership transfers —
                # no release here.
                handler.handle_packet(packet, self.sim.now)
                self.packets_delivered += 1
                return
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        table = self.routing_table
        next_hop = table.next_hop(packet.flow.dst_ip) if table is not None else None
        link = self._links_out.get(next_hop) if next_hop is not None else None
        if link is None:
            self.packets_dropped_no_route += 1
            packet.release()
            return
        self.packets_forwarded += 1
        link.send(packet)


class Host(Node):
    """An end host: sources and sinks attach here by port.

    Packets addressed to this host are dispatched on ``dst_port``; a
    default handler catches everything unbound (and the forged dup-ACK
    probes MAFIC sends to spoofed addresses land here silently).
    """

    def __init__(self, sim: "Simulator", name: str, address: int) -> None:
        super().__init__(sim, name, address)
        self._port_handlers: dict[int, PacketHandler] = {}
        self._default_handler: PacketHandler | None = None
        self.gateway: Router | None = None
        self.unhandled_packets = 0

    def bind_port(self, port: int, handler: PacketHandler) -> None:
        """Attach a transport agent to a local port."""
        if port in self._port_handlers:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._port_handlers[port] = handler

    def unbind_port(self, port: int) -> None:
        """Detach whatever is bound at ``port``."""
        self._port_handlers.pop(port, None)

    def set_default_handler(self, handler: PacketHandler) -> None:
        """Handler for packets to unbound ports."""
        self._default_handler = handler

    def receive(self, packet: Packet, via: "SimplexLink | None" = None) -> None:
        """Dispatch to the agent bound at the packet's destination port.

        A host is a packet's terminal: after the bound agent's handler
        returns, the packet is recycled into the pool.  Handlers must
        copy any fields they keep (the library's sinks and senders do).
        """
        self.packets_received += 1
        now = self.sim.now
        handler = self._port_handlers.get(packet.flow.dst_port)
        if handler is None:
            handler = self._default_handler
            if handler is None:
                self.unhandled_packets += 1
                packet.release()
                return
        handler.handle_packet(packet, now)
        self.packets_delivered += 1
        packet.release()

    def send(self, packet: Packet) -> bool:
        """Hand a locally generated packet to the gateway link."""
        if self.gateway is None:
            raise RuntimeError(f"host {self.name} has no gateway")
        link = self.link_to(self.gateway.name)
        if link is None:
            raise RuntimeError(f"host {self.name} has no link to its gateway")
        return link.send(packet)
