"""Link queues: drop-tail (NS-2's default), RED, and DRR fair queueing.

Queues hold packets awaiting transmission at the head of a simplex link.
Sizes are counted in packets, as in the paper's NS-2 setup.  DRR is
included because per-flow fair queueing is the classic *queueing-level*
answer to floods — and its failure against source-rotating attacks
(every packet a new "flow") is part of the motivation for MAFIC-style
per-flow verdicts.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol

from repro.sim.packet import Packet


class PacketQueue(Protocol):
    """Interface link queues implement."""

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Accept or drop ``packet``; return True when accepted."""
        ...

    def dequeue(self) -> Packet | None:
        """Pop the next packet to transmit, or None when empty."""
        ...

    def __len__(self) -> int: ...


class DropTailQueue:
    """Bounded FIFO; arrivals beyond ``capacity`` packets are dropped."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._queue: deque[Packet] = deque()
        self.drops = 0
        self.enqueued = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        """FIFO admit unless full."""
        if len(self._queue) >= self.capacity:
            self.drops += 1
            return False
        self._queue.append(packet)
        self.enqueued += 1
        return True

    def dequeue(self) -> Packet | None:
        """Pop in FIFO order."""
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class DRRQueue:
    """Deficit Round Robin fair queueing (Shreedhar & Varghese).

    Packets are classified by flow hash into per-flow FIFOs served round
    robin with a byte ``quantum`` per visit.  Arrivals beyond the shared
    ``capacity`` drop from the *longest* per-flow queue (so one flooding
    flow cannot starve the rest — the longest-queue-drop policy of the
    original paper).
    """

    def __init__(self, capacity: int = 64, quantum: int = 1500) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.capacity = int(capacity)
        self.quantum = int(quantum)
        self._queues: dict[int, deque[Packet]] = {}
        self._deficits: dict[int, float] = {}
        self._active: deque[int] = deque()  # round-robin order of flow ids
        self._total = 0
        self.drops = 0
        self.enqueued = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Classify by flow; on overflow, drop from the longest queue."""
        flow = packet.flow_hash
        if self._total >= self.capacity:
            longest = max(self._queues, key=lambda f: len(self._queues[f]))
            if longest == flow and len(self._queues.get(flow, ())) > 0:
                # Arriving packet joins the longest queue: drop it instead.
                self.drops += 1
                return False
            victim_queue = self._queues[longest]
            victim = victim_queue.pop()  # drop that flow's newest packet
            victim.release()  # dead: it left the queue and no one holds it
            self.drops += 1
            self._total -= 1
            if not victim_queue:
                self._forget(longest)
        queue = self._queues.get(flow)
        if queue is None:
            queue = deque()
            self._queues[flow] = queue
            self._deficits[flow] = 0.0
            self._active.append(flow)
        queue.append(packet)
        self._total += 1
        self.enqueued += 1
        return True

    def dequeue(self) -> Packet | None:
        """Serve flows round robin, a quantum of bytes per visit.

        Deficits grow by one quantum per visit, so the loop always
        terminates: after at most ``ceil(head.size / quantum)`` rounds
        some head packet becomes eligible.
        """
        if self._total == 0:
            return None
        while self._active:
            flow = self._active[0]
            queue = self._queues.get(flow)
            if not queue:
                self._active.popleft()
                self._forget(flow)
                continue
            head = queue[0]
            if self._deficits[flow] < head.size:
                # Not enough deficit: grant a quantum, move to the back.
                self._deficits[flow] += self.quantum
                self._active.rotate(-1)
                continue
            self._deficits[flow] -= head.size
            queue.popleft()
            self._total -= 1
            if not queue:
                self._active.popleft()
                self._forget(flow)
            return head
        return None

    def _forget(self, flow: int) -> None:
        self._queues.pop(flow, None)
        self._deficits.pop(flow, None)

    @property
    def active_flows(self) -> int:
        """Flows currently holding packets."""
        return len(self._queues)

    def __len__(self) -> int:
        return self._total


class REDQueue:
    """Random Early Detection (Floyd/Jacobson) over a bounded FIFO.

    Provided for completeness of the substrate (NS-2 ships RED and DDoS
    studies often enable it); MAFIC's own dropping is a separate mechanism
    at the link head, not a queue discipline.
    """

    def __init__(
        self,
        capacity: int = 64,
        min_thresh: float = 5.0,
        max_thresh: float = 15.0,
        max_prob: float = 0.1,
        weight: float = 0.002,
        rng=None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < min_thresh < max_thresh <= capacity:
            raise ValueError("need 0 < min_thresh < max_thresh <= capacity")
        if not 0 < max_prob <= 1:
            raise ValueError("max_prob must be in (0, 1]")
        if not 0 < weight <= 1:
            raise ValueError("weight must be in (0, 1]")
        import numpy as np

        self.capacity = int(capacity)
        self.min_thresh = float(min_thresh)
        self.max_thresh = float(max_thresh)
        self.max_prob = float(max_prob)
        self.weight = float(weight)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._queue: deque[Packet] = deque()
        self._avg = 0.0
        self._count_since_drop = 0
        self.drops = 0
        self.early_drops = 0
        self.enqueued = 0

    @property
    def average_occupancy(self) -> float:
        """EWMA queue length RED gates on."""
        return self._avg

    def enqueue(self, packet: Packet, now: float) -> bool:
        """RED admission: early-drop probabilistically between thresholds."""
        self._avg += self.weight * (len(self._queue) - self._avg)
        if len(self._queue) >= self.capacity:
            self.drops += 1
            self._count_since_drop = 0
            return False
        if self._avg >= self.max_thresh:
            self.drops += 1
            self.early_drops += 1
            self._count_since_drop = 0
            return False
        if self._avg >= self.min_thresh:
            base = self.max_prob * (self._avg - self.min_thresh) / (
                self.max_thresh - self.min_thresh
            )
            denom = max(1e-9, 1.0 - self._count_since_drop * base)
            p_drop = min(1.0, base / denom)
            if self._rng.random() < p_drop:
                self.drops += 1
                self.early_drops += 1
                self._count_since_drop = 0
                return False
            self._count_since_drop += 1
        self._queue.append(packet)
        self.enqueued += 1
        return True

    def dequeue(self) -> Packet | None:
        """Pop in FIFO order."""
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)
