"""Simplex links with bandwidth, propagation delay, and head hooks.

The *head hook* is the architectural seam the paper describes: NS-2
subclasses ``Connector`` ("a subclass of Connector named LogLogCounter is
added to the head of each SimplexLink") and MAFIC's dropper sits at the
same place.  A hook sees every packet about to enter the link's queue and
may consume (drop) it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, PacketQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.node import Node


class LinkHook(Protocol):
    """Objects attachable at a link head.

    ``on_packet`` returns True to let the packet continue into the queue,
    False to consume it (the hook has dropped or diverted the packet).
    """

    def on_packet(self, packet: Packet, link: "SimplexLink", now: float) -> bool: ...


class SimplexLink:
    """A unidirectional link ``src -> dst``.

    Models serialization at ``bandwidth_bps`` plus fixed propagation
    ``delay``; packets wait in ``queue`` while the link is busy.  Hooks run
    in attachment order before enqueue; counters track utilization for the
    metrics layer.
    """

    def __init__(
        self,
        sim: "Simulator",
        src: "Node",
        dst: "Node",
        bandwidth_bps: float = 10e6,
        delay: float = 0.005,
        queue: PacketQueue | None = None,
        name: str | None = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay = float(delay)
        self.queue = queue if queue is not None else DropTailQueue()
        self.name = name if name is not None else f"{src.name}->{dst.name}"
        self._head_hooks: list[LinkHook] = []
        # The transmitter is a busy-until timestamp, not an event: a
        # packet offered to an idle link is dequeued and its delivery
        # scheduled immediately, with no intermediate tx-complete event.
        # A continuation wake-up exists only while a backlog is queued.
        self._busy_until = 0.0
        self._drain_pending = False
        self._up = True
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_offered = 0
        self.hook_drops = 0
        self.failure_drops = 0
        # Observability bus (None = off).  Checked with `is not None`
        # rather than truthiness: drops sit on the hot path and the
        # plain identity test is the cheapest possible guard.
        self.bus = None

    @property
    def queue(self) -> PacketQueue:
        """The link's head-of-line queue (assignable; defences swap it)."""
        return self._queue

    @queue.setter
    def queue(self, queue: PacketQueue) -> None:
        # Bind the per-packet queue methods once per assignment; send()
        # and _drain() run per packet, a property/attr chain per call adds up.
        self._queue = queue
        self._q_enqueue = queue.enqueue
        self._q_dequeue = queue.dequeue
        self._q_len = queue.__len__

    def add_head_hook(self, hook: LinkHook) -> None:
        """Attach a hook at the link head (NS-2 Connector seam)."""
        self._head_hooks.append(hook)

    def remove_head_hook(self, hook: LinkHook) -> None:
        """Detach a previously attached hook."""
        self._head_hooks.remove(hook)

    @property
    def head_hooks(self) -> tuple[LinkHook, ...]:
        """Hooks currently attached, in execution order."""
        return tuple(self._head_hooks)

    @property
    def is_up(self) -> bool:
        """Whether the link currently accepts traffic."""
        return self._up

    def set_down(self) -> None:
        """Fail the link: new offers drop; packets in flight still arrive
        (they are already on the wire)."""
        self._up = False

    def set_up(self) -> None:
        """Restore a failed link."""
        self._up = True

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        Runs head hooks, then enqueues; returns False when the link is
        down, a hook consumed the packet, or the queue dropped it.  A
        refused packet is dead — hooks and queues copy what they keep —
        so it is recycled into the pool here.
        """
        self.packets_offered += 1
        if not self._up:
            self.failure_drops += 1
            packet.release()
            self._drop_event("down")
            return False
        now = self.sim.now
        for hook in self._head_hooks:
            if not hook.on_packet(packet, self, now):
                self.hook_drops += 1
                packet.release()
                self._drop_event("hook")
                return False
        if not self._q_enqueue(packet, now):
            packet.release()
            self._drop_event("queue")
            return False
        if not self._drain_pending:
            if self._busy_until <= now:
                self._drain(now)
            else:
                self._drain_pending = True
                # Fire-and-forget: the handle is never retained, so it
                # rides the simulator's recycled-event free list.
                self.sim.schedule_anon(self._busy_until, self._drain_event)
        return True

    def _drain(self, now: float) -> None:
        """Pull the next packet and schedule its delivery in one step."""
        packet = self._q_dequeue()
        if packet is None:
            return
        # Inlined transmission_delay (same arithmetic, minus a call).
        tx = packet.size * 8.0 / self.bandwidth_bps
        depart = now + tx
        self._busy_until = depart
        # Counted when committed to the wire: at most the one packet
        # still serializing differs from the old at-tx-complete counters.
        self.packets_sent += 1
        self.bytes_sent += packet.size
        schedule_anon = self.sim.schedule_anon
        schedule_anon(depart + self.delay, self._deliver, packet)
        if self._q_len():
            self._drain_pending = True
            schedule_anon(depart, self._drain_event)

    def _drain_event(self) -> None:
        self._drain_pending = False
        self._drain(self.sim.now)

    def _deliver(self, packet: Packet) -> None:
        packet.hop_count += 1
        self.dst.receive(packet, self)

    def _drop_event(self, reason: str) -> None:
        """Publish one ``link.drop`` event (bus attached and listening)."""
        bus = self.bus
        if bus is not None and bus:
            from repro.obs.events import LinkDrop

            bus.emit(LinkDrop(self.sim.now, self.name, reason))

    def stats(self) -> dict:
        """Counter snapshot for the observability layer (plain dict)."""
        return {
            "link": self.name,
            "packets_offered": self.packets_offered,
            "packets_sent": self.packets_sent,
            "bytes_sent": self.bytes_sent,
            "hook_drops": self.hook_drops,
            "failure_drops": self.failure_drops,
            "queue_len": self._q_len(),
        }

    def utilization(self, elapsed: float) -> float:
        """Fraction of capacity used over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return (self.bytes_sent * 8.0) / (self.bandwidth_bps * elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SimplexLink({self.name}, {self.bandwidth_bps / 1e6:.1f}Mbps, "
            f"{self.delay * 1e3:.1f}ms, qlen={len(self.queue)})"
        )
