"""Static shortest-path routing.

Routes are computed once from the topology graph (Dijkstra over link
delays) and installed as longest-prefix-match tables keyed by subnet.
The core network of the paper is a fixed intra-AS domain, so static
routing is faithful: there is no route churn during an experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import networkx as nx

from repro.sim.address import Subnet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.node import Router


class RoutingTable:
    """Longest-prefix-match next-hop table for one router."""

    def __init__(self) -> None:
        from repro.perf import FLAGS

        # Sorted by descending prefix length for LPM.
        self._entries: list[tuple[Subnet, str]] = []
        self._default: str | None = None
        # Routes are static within an experiment, so LPM results are
        # memoized per destination (hit on every forwarded packet).
        # None when the legacy benchmark mode disables the caches.
        self._cache: dict[int, str | None] | None = (
            {} if FLAGS.hot_path_caches else None
        )

    def add_route(self, subnet: Subnet, next_hop_name: str) -> None:
        """Install a route to ``subnet`` via the named neighbour."""
        self._entries.append((subnet, next_hop_name))
        self._entries.sort(key=lambda entry: -entry[0].prefix_len)
        if self._cache is not None:
            self._cache.clear()

    def set_default(self, next_hop_name: str) -> None:
        """Install a default route."""
        self._default = next_hop_name
        if self._cache is not None:
            self._cache.clear()

    #: Memo bound: probes routed toward rotating spoofed sources can
    #: mint one fresh destination per packet; past this many entries the
    #: cache is cleared rather than grown (stable flows repopulate it
    #: immediately, memory stays bounded).
    _CACHE_MAX = 1 << 16

    def next_hop(self, dst_ip: int) -> str | None:
        """Longest-prefix-match lookup; falls back to the default route."""
        cache = self._cache
        if cache is not None and dst_ip in cache:
            return cache[dst_ip]
        hop = self._default
        for subnet, candidate in self._entries:
            if subnet.contains(dst_ip):
                hop = candidate
                break
        if cache is not None:
            if len(cache) >= self._CACHE_MAX:
                cache.clear()
            cache[dst_ip] = hop
        return hop

    def routes(self) -> tuple[tuple[Subnet, str], ...]:
        """All installed routes (LPM order)."""
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


def build_static_routes(
    graph: nx.Graph,
    routers: dict[str, "Router"],
    subnet_attachments: Iterable[tuple[str, Subnet]],
) -> None:
    """Compute and install shortest-path routes on every router.

    ``graph`` holds router names as nodes with ``delay`` edge weights;
    ``subnet_attachments`` yields ``(router_name, subnet)`` pairs naming
    the router each allocated subnet hangs off (a ``dict.items()`` view
    of a router-name -> subnet map works directly).  For every
    (router, subnet) pair we find the shortest path and install the
    first hop.
    """
    attachments = list(subnet_attachments)
    all_paths: dict[str, dict[str, list[str]]] = {}
    for name in routers:
        # Single-source shortest paths once per router.
        all_paths[name] = nx.single_source_dijkstra_path(graph, name, weight="delay")
    for attach_name, subnet in attachments:
        if attach_name not in routers:
            raise ValueError(f"subnet {subnet} attached to unknown router {attach_name}")
        for name, router in routers.items():
            if name == attach_name:
                continue  # local delivery handles it
            path = all_paths[name].get(attach_name)
            if path is None or len(path) < 2:
                continue
            router_table = router.routing_table
            if router_table is None:
                router_table = RoutingTable()
                router.routing_table = router_table
            router_table.add_route(subnet, path[1])
    # Routers with no table at all (isolated) get an empty one.
    for router in routers.values():
        if router.routing_table is None:
            router.routing_table = RoutingTable()
