"""Result analysis: multi-seed aggregation, convergence checks, export.

The paper reports single curves; a faithful open-source release also
needs the tooling to quantify run-to-run variation (seeds), to decide
whether a time series has reached steady state, and to write results to
disk in formats downstream plotting tools consume.
"""

from repro.analysis.aggregate import (
    AggregatedMetrics,
    MetricStats,
    aggregate_runs,
    run_seeds,
)
from repro.analysis.convergence import (
    converged,
    settling_time,
)
from repro.analysis.export import (
    figure_to_csv,
    figure_to_dict,
    summary_to_dict,
    write_csv,
    write_json,
)
from repro.analysis.tracetools import (
    AtrActivity,
    ProbeLatency,
    atr_activity,
    drop_reason_timeline,
    latency_stats,
    probe_to_verdict_latencies,
)

__all__ = [
    "AggregatedMetrics",
    "AtrActivity",
    "MetricStats",
    "ProbeLatency",
    "aggregate_runs",
    "atr_activity",
    "converged",
    "drop_reason_timeline",
    "figure_to_csv",
    "figure_to_dict",
    "latency_stats",
    "probe_to_verdict_latencies",
    "run_seeds",
    "settling_time",
    "summary_to_dict",
    "write_csv",
    "write_json",
]
