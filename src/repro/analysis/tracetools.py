"""Derived views over an :class:`~repro.sim.trace.EventTrace`.

Turns the flat event log into the operational questions an operator
asks: how long from probe to verdict, how busy was each ATR, what is the
drop-reason mix over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.trace import EventTrace
from repro.util.stats import RunningStats


@dataclass
class ProbeLatency:
    """One flow's probe-to-verdict interval."""

    flow: int
    probed_at: float
    verdict_at: float
    verdict: str  # "nice" | "cut"

    @property
    def latency(self) -> float:
        """Seconds from first probe to verdict."""
        return self.verdict_at - self.probed_at


def probe_to_verdict_latencies(trace: EventTrace) -> list[ProbeLatency]:
    """Pair each flow's first probe with its first verdict."""
    first_probe: dict[int, float] = {}
    for record in trace.select("probe.sent"):
        flow = record.detail.get("flow")
        if flow is not None and flow not in first_probe:
            first_probe[flow] = record.time
    results: list[ProbeLatency] = []
    seen: set[int] = set()
    for record in trace:
        if record.category not in ("flow.nice", "flow.cut"):
            continue
        flow = record.detail.get("flow")
        if flow is None or flow in seen or flow not in first_probe:
            continue
        seen.add(flow)
        results.append(
            ProbeLatency(
                flow=flow,
                probed_at=first_probe[flow],
                verdict_at=record.time,
                verdict="nice" if record.category == "flow.nice" else "cut",
            )
        )
    return results


def latency_stats(latencies: list[ProbeLatency]) -> RunningStats:
    """Fold latencies into RunningStats (mean/min/max/stddev)."""
    stats = RunningStats()
    for item in latencies:
        stats.update(item.latency)
    return stats


@dataclass
class AtrActivity:
    """One ATR's activity summary from the trace."""

    atr: str
    activated_at: float | None = None
    deactivated_at: float | None = None
    probes: int = 0
    drops_by_reason: dict[str, int] = field(default_factory=dict)
    verdicts_nice: int = 0
    verdicts_cut: int = 0


def atr_activity(trace: EventTrace) -> dict[str, AtrActivity]:
    """Per-ATR summary of everything traced."""
    activity: dict[str, AtrActivity] = {}

    def entry(name: str) -> AtrActivity:
        if name not in activity:
            activity[name] = AtrActivity(atr=name)
        return activity[name]

    for record in trace:
        atr = record.detail.get("atr")
        if atr is None:
            continue
        item = entry(atr)
        if record.category == "pushback.start" and item.activated_at is None:
            item.activated_at = record.time
        elif record.category == "pushback.stop":
            item.deactivated_at = record.time
        elif record.category == "probe.sent":
            item.probes += 1
        elif record.category.startswith("drop."):
            reason = record.category.split(".", 1)[1]
            item.drops_by_reason[reason] = (
                item.drops_by_reason.get(reason, 0) + 1
            )
        elif record.category == "flow.nice":
            item.verdicts_nice += 1
        elif record.category == "flow.cut":
            item.verdicts_cut += 1
    return activity


def drop_reason_timeline(
    trace: EventTrace, bin_width: float = 0.25
) -> dict[str, list[tuple[float, int]]]:
    """reason -> [(bin centre, drop count)] over the whole trace."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    buckets: dict[str, dict[int, int]] = {}
    for record in trace.select("drop."):
        reason = record.category.split(".", 1)[1]
        index = int(record.time / bin_width)
        per_reason = buckets.setdefault(reason, {})
        per_reason[index] = per_reason.get(index, 0) + 1
    timeline: dict[str, list[tuple[float, int]]] = {}
    for reason, bins in buckets.items():
        timeline[reason] = [
            ((index + 0.5) * bin_width, count)
            for index, count in sorted(bins.items())
        ]
    return timeline
