"""Export results to CSV/JSON for downstream plotting."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.experiments.figures import FigureResult
from repro.metrics.rates import MetricsSummary


def summary_to_dict(summary: MetricsSummary) -> dict[str, Any]:
    """A JSON-friendly dict of one run's summary."""
    return {
        "accuracy": summary.accuracy,
        "traffic_reduction": summary.traffic_reduction,
        "false_positive_rate": summary.false_positive_rate,
        "false_negative_rate": summary.false_negative_rate,
        "legit_drop_rate": summary.legit_drop_rate,
        "attack_examined": summary.attack_examined,
        "attack_dropped": summary.attack_dropped,
        "wellbehaved_examined": summary.wellbehaved_examined,
        "wellbehaved_dropped": summary.wellbehaved_dropped,
        "wellbehaved_pdt_drops": summary.wellbehaved_pdt_drops,
        "total_examined": summary.total_examined,
        "victim_rate_before_bps": summary.victim_rate_before_bps,
        "victim_rate_after_bps": summary.victim_rate_after_bps,
    }


def summary_from_dict(data: dict[str, Any]) -> MetricsSummary:
    """Rebuild a :class:`MetricsSummary` from :func:`summary_to_dict`
    output (the campaign store's read path).  Unknown keys are rejected;
    missing optional counts fall back to the dataclass defaults."""
    return MetricsSummary(**data)


def figure_to_dict(figure: FigureResult) -> dict[str, Any]:
    """A JSON-friendly dict of one reproduced figure."""
    return {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "series": {
            name: [[x, y] for x, y in points]
            for name, points in figure.series.items()
        },
    }


def figure_to_csv(figure: FigureResult) -> list[list[Any]]:
    """Rows (header first) of a wide CSV: x column + one column/series."""
    names = list(figure.series)
    xs: list[float] = []
    for name in names:
        for x, _ in figure.series[name]:
            if x not in xs:
                xs.append(x)
    xs.sort()
    lookup = {name: dict(figure.series[name]) for name in names}
    rows: list[list[Any]] = [["x", *names]]
    for x in xs:
        rows.append([x, *(lookup[name].get(x, "") for name in names)])
    return rows


def write_csv(figure: FigureResult, path: str | Path) -> Path:
    """Write one figure as CSV; returns the path."""
    return write_rows_csv(figure_to_csv(figure), path)


def write_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Write any JSON-friendly payload; returns the path."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return target


def write_rows_csv(rows: list[list[Any]], path: str | Path) -> Path:
    """Write pre-built CSV rows (header first); returns the path."""
    target = Path(path)
    with target.open("w", newline="", encoding="utf-8") as f:
        csv.writer(f).writerows(rows)
    return target
