"""Steady-state detection on time series.

Used to answer "has the victim's arrival rate settled after the cut?"
(Fig 4(b)'s qualitative claim) with a quantitative rule: a series is
*converged* over a window when its values stay within a relative band
around the window mean.
"""

from __future__ import annotations


def converged(
    values: list[float],
    window: int = 5,
    tolerance: float = 0.15,
) -> bool:
    """True when the last ``window`` values stay within ``tolerance``
    (relative) of their own mean.

    A zero-mean window counts as converged only if every value is zero.
    """
    if window < 2:
        raise ValueError("window must be >= 2")
    if not 0.0 < tolerance:
        raise ValueError("tolerance must be positive")
    if len(values) < window:
        return False
    tail = values[-window:]
    mean = sum(tail) / window
    if mean == 0.0:
        return all(v == 0.0 for v in tail)
    return all(abs(v - mean) <= tolerance * abs(mean) for v in tail)


def settling_time(
    times: list[float],
    values: list[float],
    window: int = 5,
    tolerance: float = 0.15,
) -> float | None:
    """Earliest time from which the series stays converged, or None.

    Scans forward: returns the time of the first sample of the earliest
    window after which *every* suffix window is converged.
    """
    if len(times) != len(values):
        raise ValueError("times and values must be the same length")
    n = len(values)
    if n < window:
        return None
    # Find the first index i such that values[j:j+window] is converged
    # for every j >= i with a full window.
    last_bad = -1
    for j in range(n - window + 1):
        if not converged(values[j : j + window], window, tolerance):
            last_bad = j
    first_good = last_bad + 1
    if first_good > n - window:
        return None
    return times[first_good]
