"""Multi-seed aggregation of experiment results.

One seed gives one sample of each metric; :func:`run_seeds` runs a config
across seeds and :func:`aggregate_runs` folds the samples into means with
confidence intervals (Student-t when scipy is available, normal
approximation otherwise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.util.stats import RunningStats

_METRIC_NAMES = (
    "accuracy",
    "traffic_reduction",
    "false_positive_rate",
    "false_negative_rate",
    "legit_drop_rate",
)


@dataclass
class MetricStats:
    """Mean, spread, and confidence half-width of one metric."""

    name: str
    mean: float
    stddev: float
    n: int
    ci_halfwidth: float

    @property
    def low(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.ci_halfwidth

    @property
    def high(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.ci_halfwidth


@dataclass
class AggregatedMetrics:
    """All five paper metrics aggregated over seeds."""

    metrics: dict[str, MetricStats] = field(default_factory=dict)
    n_runs: int = 0

    def __getitem__(self, name: str) -> MetricStats:
        return self.metrics[name]

    def as_percent_table(self) -> str:
        """Formatted 'metric  mean% +/- ci%' table."""
        lines = [f"{'metric':<22} {'mean%':>9} {'+/-':>8}  (n={self.n_runs})"]
        for name in _METRIC_NAMES:
            stats = self.metrics[name]
            lines.append(
                f"{name:<22} {100 * stats.mean:>9.3f} "
                f"{100 * stats.ci_halfwidth:>8.3f}"
            )
        return "\n".join(lines)


def _t_critical(df: int, confidence: float) -> float:
    """Two-sided t critical value; scipy when present, normal z fallback."""
    try:
        from scipy import stats as scipy_stats

        return float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df))
    except ImportError:  # pragma: no cover - scipy is a declared dev dep
        return {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(confidence, 1.96)


def run_seeds(
    config: ExperimentConfig, seeds: list[int], jobs: int | None = 1
) -> list[ExperimentResult]:
    """Run ``config`` once per seed.

    ``jobs > 1`` fans the seeds out to worker processes: the per-seed
    summaries are bit-identical to a serial run, but the returned results
    are detached (``scenario`` is ``None`` — it cannot cross the process
    boundary).  ``jobs=None`` or ``1`` stays serial and in-process with
    live scenarios, matching :func:`repro.experiments.sweeps.sweep`.
    """
    if not seeds:
        raise ValueError("seeds must be non-empty")
    if jobs is not None and jobs > 1:
        from repro.experiments.parallel import run_seeds_parallel

        return run_seeds_parallel(config, seeds, jobs=jobs).results
    return [run_experiment(config.with_overrides(seed=s)) for s in seeds]


def aggregate_runs(
    runs: list[ExperimentResult], confidence: float = 0.95
) -> AggregatedMetrics:
    """Fold runs into per-metric means with t confidence intervals."""
    if not runs:
        raise ValueError("runs must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    aggregated = AggregatedMetrics(n_runs=len(runs))
    for name in _METRIC_NAMES:
        stats = RunningStats()
        for run in runs:
            stats.update(getattr(run.summary, name))
        if stats.count >= 2:
            # Sample (not population) stddev for the CI.
            sample_var = stats.variance * stats.count / (stats.count - 1)
            sample_sd = math.sqrt(sample_var)
            halfwidth = (
                _t_critical(stats.count - 1, confidence)
                * sample_sd
                / math.sqrt(stats.count)
            )
        else:
            sample_sd = 0.0
            halfwidth = 0.0
        aggregated.metrics[name] = MetricStats(
            name=name,
            mean=stats.mean,
            stddev=sample_sd,
            n=stats.count,
            ci_halfwidth=halfwidth,
        )
    return aggregated
