"""Engine performance-mode flags.

The PR 4 hot-path overhaul is provably result-preserving: the calendar
queue executes the identical event sequence as the heap, the packet pool
recycles objects without changing uids or field values, and batched
source generation consumes the same RNG streams in the same draw order.
These flags exist so the legacy formulation stays runnable — the
``bench_engine`` benchmark measures both modes *in the same process* and
asserts their results are bit-identical before reporting a speedup, and
CI's ``engine-perf-smoke`` job runs the invariants at tiny scale.

``FLAGS`` is a process-global (the simulator is single-threaded per
process; parallel sweep workers inherit the defaults).  Use
:func:`engine_mode` to override temporarily::

    with engine_mode(queue="heap", packet_pool=False, batched_sources=False):
        result = run_experiment(config)   # legacy engine, identical results
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class PerfFlags:
    """Which engine formulation runs."""

    #: Default Simulator queue backend: "heap" or "calendar".  Both are
    #: proven bit-exact, and the compiled core (repro.sim._corec)
    #: implements both in C — a level playing field the calendar wheel
    #: still loses on: measured on the Table-II scenario the compiled
    #: heap beats the compiled wheel (the wheel pays anchor/migrate/
    #: resize bookkeeping that a ~100-1000-event pending set never
    #: amortizes), so the heap stays default by measurement, not by
    #: implementation-language accident (see BENCH_engine.json).
    queue: str = "heap"
    #: Recycle Packet objects through the free-list pool during runs.
    packet_pool: bool = True
    #: CBR/on-off senders precompute departure times per horizon chunk
    #: (and zombies sharing an RNG stream prefetch jitter draws).
    batched_sources: bool = True
    #: Cross-layer memoization (static route lookups, source-legality
    #: checks, flow labels, LogLog item hashes, spoofed flow keys).
    #: Toggleable so ``legacy_mode`` can measure the pre-overhaul
    #: formulation in the same process.
    hot_path_caches: bool = True
    #: TCP senders postpone their pending RTO event in place per ACK
    #: (``Simulator.postpone``) instead of a cancel+reschedule round
    #: trip through the queue.  Bit-exact: one seq draw either way.
    lazy_timers: bool = True
    #: Fire-and-forget link events (drain wake-ups, deliveries) ride
    #: recycled handles from the simulator's Event free list.
    event_pool: bool = True


FLAGS = PerfFlags()

_FIELDS = (
    "queue", "packet_pool", "batched_sources", "hot_path_caches",
    "lazy_timers", "event_pool",
)


@contextmanager
def engine_mode(**overrides):
    """Temporarily override :data:`FLAGS` fields (see module docstring)."""
    unknown = set(overrides) - set(_FIELDS)
    if unknown:
        raise TypeError(f"unknown perf flags: {sorted(unknown)}")
    saved = {name: getattr(FLAGS, name) for name in _FIELDS}
    try:
        for name, value in overrides.items():
            setattr(FLAGS, name, value)
        yield FLAGS
    finally:
        for name, value in saved.items():
            setattr(FLAGS, name, value)


def legacy_mode():
    """The pre-overhaul formulation: heap queue, no pool, unbatched
    ticks, no cross-layer caches.  A few structural changes (slotted
    Packet/FlowKey, precomputed subnet masks, bytearray sketch
    registers) cannot be toggled back, so a legacy-mode wall time still
    slightly *understates* the true pre-PR cost — speedups measured
    against it are conservative."""
    return engine_mode(
        queue="heap", packet_pool=False, batched_sources=False,
        hot_path_caches=False, lazy_timers=False, event_pool=False,
    )
