"""Small online statistics helpers used by rate monitors and metrics."""

from __future__ import annotations

import math
from collections import deque


class Ewma:
    """Exponentially weighted moving average.

    ``alpha`` is the weight of the newest sample; ``alpha=1`` tracks the
    last sample exactly, small alpha smooths heavily.
    """

    __slots__ = ("alpha", "_value")

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value: float | None = None

    @property
    def value(self) -> float | None:
        """Current average, or ``None`` before any sample."""
        return self._value

    def update(self, sample: float) -> float:
        """Fold in one sample and return the new average."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.alpha * (float(sample) - self._value)
        return self._value

    def reset(self) -> None:
        """Forget all samples."""
        self._value = None


class RunningStats:
    """Welford online mean/variance.

    Numerically stable; supports merge for parallel collection.
    """

    __slots__ = ("count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def update(self, sample: float) -> None:
        """Fold in one sample."""
        x = float(sample)
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than 2 samples)."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample seen (+inf when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest sample seen (-inf when empty)."""
        return self._max

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new RunningStats equal to the union of both sample sets."""
        merged = RunningStats()
        n = self.count + other.count
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged.count = n
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / n
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged


class WindowedRate:
    """Event rate over a sliding time window.

    Used by MAFIC's per-flow arrival-rate monitor: the ATR records packet
    arrival timestamps and asks for the arrival rate over the last
    ``window`` seconds.
    """

    __slots__ = ("window", "_times", "_weights", "_weight_sum", "_next_expiry")

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._times: deque[float] = deque()
        self._weights: deque[float] = deque()
        self._weight_sum = 0.0
        # Prune watermark: record() only prunes once the oldest entry is
        # a full window past expiry, so the per-sample hot path is one
        # float compare and expired entries leave in one batch per
        # window (bounding memory at ~2 windows of samples).
        # rate()/count() always prune fully, so the values read are
        # exact regardless of when record() last pruned.
        self._next_expiry = -math.inf

    def record(self, now: float, weight: float = 1.0) -> None:
        """Record an event of ``weight`` (e.g. packet size) at time ``now``."""
        self._times.append(now)
        self._weights.append(weight)
        self._weight_sum += weight
        if now >= self._next_expiry:
            self._expire(now)

    def rate(self, now: float) -> float:
        """Events (weighted) per second over the trailing window."""
        self._expire(now)
        return self._weight_sum / self.window

    def count(self, now: float) -> int:
        """Number of events currently inside the window."""
        self._expire(now)
        return len(self._times)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        times = self._times
        weights = self._weights
        while times and times[0] <= cutoff:
            times.popleft()
            self._weight_sum -= weights.popleft()
        if times:
            self._next_expiry = times[0] + 2.0 * self.window
        else:
            self._weight_sum = 0.0
            self._next_expiry = now + 2.0 * self.window
