"""Stable, process-independent hashing.

Python's built-in :func:`hash` is randomized per process for strings, which
would make flow tables non-reproducible across runs.  MAFIC stores *hashed*
flow labels (Section III.B of the paper), so the hash must be stable: the
same 4-tuple must map to the same 64-bit value in every run and on every
platform.  We use FNV-1a, which is tiny, fast, and has adequate dispersion
for table keys.
"""

from __future__ import annotations

_FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
_FNV_PRIME_64 = 0x100000001B3
_MASK_64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes) -> int:
    """Return the 64-bit FNV-1a hash of ``data``.

    >>> fnv1a_64(b"") == 0xCBF29CE484222325
    True
    """
    h = _FNV_OFFSET_BASIS_64
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME_64) & _MASK_64
    return h


def fmix64(h: int) -> int:
    """MurmurHash3's 64-bit finalizer: full avalanche over all bits.

    FNV-1a alone disperses its low bits well but its high bits poorly,
    which ruins sketches that bucket on the top bits; this finalizer
    fixes that.
    """
    h &= _MASK_64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK_64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK_64
    h ^= h >> 33
    return h


def stable_hash64(*parts: int | str | bytes) -> int:
    """Hash a heterogeneous tuple of parts into a stable 64-bit integer.

    Integer parts are encoded as 8-byte big-endian (masked to 64 bits),
    strings as UTF-8.  A one-byte type tag and a separator byte keep
    adjacent parts from colliding (``("ab", "c")`` vs ``("a", "bc")``).
    The FNV-1a core is finalized with :func:`fmix64` so every output bit
    avalanches (sketches bucket on the high bits).
    """
    buf = bytearray()
    for part in parts:
        if isinstance(part, bool):
            # bool is an int subclass; tag it distinctly for clarity.
            buf.append(0x03)
            buf.append(1 if part else 0)
        elif isinstance(part, int):
            buf.append(0x01)
            buf.extend((part & _MASK_64).to_bytes(8, "big"))
        elif isinstance(part, str):
            buf.append(0x02)
            buf.extend(part.encode("utf-8"))
        elif isinstance(part, bytes):
            buf.append(0x04)
            buf.extend(part)
        else:
            raise TypeError(f"unhashable part type: {type(part).__name__}")
        buf.append(0x1F)  # unit separator
    return fmix64(fnv1a_64(bytes(buf)))
