"""Shared utilities: seeded RNG streams, running statistics, stable hashing,
argument validation, and unit conversions.

These modules carry no simulation state of their own; everything here is a
small, deterministic building block used throughout :mod:`repro`.
"""

from repro.util.hashing import fnv1a_64, stable_hash64
from repro.util.rng import RngRegistry, derive_seed
from repro.util.stats import Ewma, RunningStats, WindowedRate
from repro.util.units import (
    BITS_PER_BYTE,
    bits_to_bytes,
    bytes_to_bits,
    mbps,
    kbps,
    pkts_per_sec,
    transmission_delay,
)
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "BITS_PER_BYTE",
    "Ewma",
    "RngRegistry",
    "RunningStats",
    "WindowedRate",
    "bits_to_bytes",
    "bytes_to_bits",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "derive_seed",
    "fnv1a_64",
    "kbps",
    "mbps",
    "pkts_per_sec",
    "stable_hash64",
    "transmission_delay",
]
