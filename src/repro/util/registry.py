"""A small name -> builder registry with aliases and docs.

The scenario subsystem composes every run from four pluggable component
families — topologies, workloads, attacks, and defences — each kept in
one :class:`Registry`.  Components self-register at import time with the
:meth:`Registry.register` decorator, so adding a scenario family is a
one-file change: define the builder, register it, done.  Nothing in the
composer (``repro.experiments.scenario``), the config validation, or the
CLI needs editing — they all read the registries.

>>> WIDGETS = Registry("widget")
>>> @WIDGETS.register("basic", aliases=("plain",), doc="The plain widget.")
... def build_basic():
...     return "basic-widget"
>>> WIDGETS.get("plain")()
'basic-widget'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Generic, Iterator, TypeVar

B = TypeVar("B")


class UnknownComponentError(KeyError):
    """Lookup of a name no component was registered under."""


@dataclass(frozen=True)
class Registered(Generic[B]):
    """One registry entry: the builder plus its descriptive metadata."""

    name: str
    builder: B
    doc: str = ""
    aliases: tuple[str, ...] = ()
    meta: dict[str, Any] = field(default_factory=dict)


def _as_name(value: Any) -> str:
    """Normalise a lookup key: enum members resolve to their value."""
    if isinstance(value, Enum):
        return str(value.value)
    return str(value)


class Registry(Generic[B]):
    """Maps component names (and aliases) to builder callables.

    ``kind`` only labels error messages ("unknown topology ..."). Canonical
    names should be lowercase snake_case; aliases cover legacy spellings
    (``transit-stub``) and convenient shorthands.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Registered[B]] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------ writing

    def register(
        self,
        name: str,
        *,
        aliases: tuple[str, ...] | list[str] = (),
        doc: str | None = None,
        **meta: Any,
    ) -> Callable[[B], B]:
        """Decorator: register ``builder`` under ``name`` (plus aliases).

        ``doc`` defaults to the first line of the builder's docstring;
        extra keyword arguments land in the entry's ``meta`` dict (e.g.
        ``hops_one_way`` for topologies, read by the validator).
        """

        def decorate(builder: B) -> B:
            if name in self._entries or name in self._aliases:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            summary = doc
            if summary is None:
                raw = getattr(builder, "__doc__", None) or ""
                summary = raw.strip().splitlines()[0] if raw.strip() else ""
            for alias in aliases:
                if alias in self._entries or alias in self._aliases:
                    raise ValueError(
                        f"{self.kind} alias {alias!r} is already registered"
                    )
            self._entries[name] = Registered(
                name=name,
                builder=builder,
                doc=summary,
                aliases=tuple(aliases),
                meta=dict(meta),
            )
            for alias in aliases:
                self._aliases[alias] = name
            return builder

        return decorate

    def unregister(self, name: str) -> None:
        """Remove an entry and its aliases; unknown names are a no-op
        (test-teardown helper)."""
        try:
            canonical = self.canonical(name)
        except UnknownComponentError:
            return
        entry = self._entries.pop(canonical)
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    # ------------------------------------------------------------ reading

    def canonical(self, name: Any) -> str:
        """Resolve a name, alias, or legacy enum member to the canonical
        name; raises :class:`UnknownComponentError` listing what exists."""
        key = _as_name(name)
        if key in self._entries:
            return key
        if key in self._aliases:
            return self._aliases[key]
        known = ", ".join(sorted(self._entries))
        raise UnknownComponentError(
            f"unknown {self.kind} {key!r}; registered: {known}"
        )

    def spec(self, name: Any) -> Registered[B]:
        """The full entry for ``name``."""
        return self._entries[self.canonical(name)]

    def get(self, name: Any) -> B:
        """The builder registered under ``name``."""
        return self.spec(name).builder

    def names(self) -> list[str]:
        """Canonical names, sorted."""
        return sorted(self._entries)

    def describe(self) -> list[tuple[str, str]]:
        """(name, one-line doc) pairs for listings, sorted by name."""
        return [(name, self._entries[name].doc) for name in self.names()]

    def __contains__(self, name: Any) -> bool:
        try:
            self.canonical(name)
        except UnknownComponentError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Registry({self.kind!r}, {self.names()})"
