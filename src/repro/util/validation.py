"""Argument validation helpers.

Raise early with a message naming the offending parameter; all public
constructors in :mod:`repro` validate through these.
"""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it as float."""
    v = float(value)
    if not v > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return v


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it as float."""
    v = float(value)
    if v < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return v


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it as float."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return v


def check_fraction(name: str, value: float) -> float:
    """Alias of :func:`check_probability` for readability (shares of traffic)."""
    return check_probability(name, value)


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Require ``isinstance(value, expected)``; return value unchanged."""
    if not isinstance(value, expected):
        names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {names}, got {type(value).__name__}")
    return value
