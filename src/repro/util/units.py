"""Rate and size unit conversions.

The simulator's canonical units are **seconds**, **bytes** (packet sizes),
and **bits per second** (link and source rates).  These helpers keep
conversions explicit at call sites.
"""

from __future__ import annotations

BITS_PER_BYTE = 8


def bytes_to_bits(n_bytes: float) -> float:
    """Convert a byte count to bits."""
    return float(n_bytes) * BITS_PER_BYTE


def bits_to_bytes(n_bits: float) -> float:
    """Convert a bit count to bytes."""
    return float(n_bits) / BITS_PER_BYTE


def kbps(value: float) -> float:
    """Kilobits/second to bits/second."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """Megabits/second to bits/second."""
    return float(value) * 1e6


def pkts_per_sec(rate_bps: float, packet_size_bytes: float) -> float:
    """Packets per second implied by a bit rate and a packet size."""
    if packet_size_bytes <= 0:
        raise ValueError("packet_size_bytes must be positive")
    return float(rate_bps) / bytes_to_bits(packet_size_bytes)


def transmission_delay(packet_size_bytes: float, bandwidth_bps: float) -> float:
    """Seconds required to serialize a packet onto a link."""
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth_bps must be positive")
    return bytes_to_bits(packet_size_bytes) / float(bandwidth_bps)
