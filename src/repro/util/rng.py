"""Named, seeded random-number streams.

Every stochastic decision in the simulator (packet drops, spoofed address
draws, flow start jitter, ...) pulls from a *named* stream derived from a
single experiment seed.  Two properties follow:

* **Reproducibility** — the same seed always yields the same run.
* **Isolation** — adding a new consumer of randomness does not perturb the
  draws seen by existing consumers, because each stream is derived from
  ``(root_seed, name)`` rather than shared.
"""

from __future__ import annotations

import numpy as np

from repro.util.hashing import stable_hash64


def derive_seed(root_seed: int, *names: int | str) -> int:
    """Derive a child seed from a root seed and a path of names.

    The derivation is a stable hash, so it is insensitive to the order in
    which streams are first requested.
    """
    return stable_hash64(root_seed, *names)


class UniformBuffer:
    """Prefetched uniform draws from one generator, served in order.

    ``next()`` is bit-identical to ``float(rng.random())`` call-for-call:
    numpy's bulk ``random(n)`` consumes the bit generator exactly like
    ``n`` scalar calls, so consumers sharing one stream (e.g. every
    zombie's tick jitter drawing from the one ``"attack"`` stream) see
    the same values in the same global order — just without a numpy
    scalar-dispatch round trip per draw.

    The first fill is lazy, so a buffer created at build time consumes
    nothing from the stream until the first in-run draw.
    """

    __slots__ = ("_rng", "_chunk", "_values", "_index")

    def __init__(self, rng, chunk: int = 256) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self._rng = rng
        self._chunk = chunk
        self._values = ()
        self._index = 0

    def next(self) -> float:
        """The next uniform [0, 1) draw from the underlying stream."""
        i = self._index
        if i >= len(self._values):
            self._values = self._rng.random(self._chunk)
            i = 0
        self._index = i + 1
        return float(self._values[i])


class UniformSource:
    """Adapter giving a :class:`UniformBuffer` the ``rng.random()`` shape.

    Lets code written against ``Generator.random()`` (e.g. the drop
    policies' Bernoulli gates) draw from a shared prefetched buffer; the
    holder of the buffer guarantees every consumer of the underlying
    stream goes through it, so the draw order is preserved exactly.
    """

    __slots__ = ("_next",)

    def __init__(self, buffer: UniformBuffer) -> None:
        self._next = buffer.next

    def random(self) -> float:
        """The next uniform [0, 1) draw from the shared buffer."""
        return self._next()


class RngRegistry:
    """A factory of named :class:`numpy.random.Generator` streams.

    >>> reg = RngRegistry(42)
    >>> a = reg.stream("drops")
    >>> b = reg.stream("drops")
    >>> a is b
    True
    >>> reg2 = RngRegistry(42)
    >>> float(a.random()) == float(reg2.stream("drops").random())
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, int):
            raise TypeError("root_seed must be an int")
        self._root_seed = root_seed
        self._streams: dict[tuple[int | str, ...], np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this registry was created with."""
        return self._root_seed

    def stream(self, *names: int | str) -> np.random.Generator:
        """Return the generator for the stream named by ``names``.

        The same name path always returns the same generator object, so
        consumers may either cache it or re-request it each time.
        """
        if not names:
            raise ValueError("a stream needs at least one name component")
        key = tuple(names)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._root_seed, *names))
            self._streams[key] = gen
        return gen

    def fork(self, *names: int | str) -> "RngRegistry":
        """Return a new registry rooted at a derived seed.

        Useful for giving a subsystem its own namespace of streams.
        """
        return RngRegistry(derive_seed(self._root_seed, *names))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngRegistry(root_seed={self._root_seed}, streams={len(self._streams)})"
