"""Legacy setup shim: lets `pip install -e .` work without the wheel
package (offline environments with older setuptools)."""

from setuptools import setup

setup()
