"""Legacy setup shim: lets `pip install -e .` work without the wheel
package (offline environments with older setuptools).

Also wires up the optional compiled engine core.  The extension is
marked optional so environments without a C toolchain still install
cleanly — the engine falls back to pure Python (see repro/sim/_core.py).
Build in place with:

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.sim._corec",
            sources=["src/repro/sim/_corec.c"],
            optional=True,
        )
    ]
)
